package core_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"lineup/internal/core"
	"lineup/internal/faultinject"
	"lineup/internal/history"
	"lineup/internal/sched"
)

// distCheck runs the full distributed path in-process: plan, check every
// unit independently, and merge. Reports are handed to the merge in reverse
// completion order to prove the merge is order-independent.
func distCheck(sub *core.Subject, m *core.Test, opts core.Options, depth int) (*core.Result, error) {
	plan, err := core.PlanUnits(sub, m, opts, depth)
	if err != nil {
		return nil, err
	}
	reports := make([]*core.UnitReport, 0, len(plan.Units))
	for _, u := range plan.Units {
		rep, err := core.CheckUnit(sub, m, opts, u, nil)
		if err != nil {
			return nil, err
		}
		reports = append(reports, rep)
	}
	for i, j := 0, len(reports)-1; i < j; i, j = i+1, j-1 {
		reports[i], reports[j] = reports[j], reports[i]
	}
	return core.MergeUnitReports(sub, m, opts, plan, reports)
}

// firstLine strips the stack dump panics append to error strings; stacks
// differ across runs, the first line does not.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// requireSameResult asserts got is bit-identical to want up to phase
// durations (the merge does no wall-clock accounting) and panic stacks.
func requireSameResult(t *testing.T, tag string, got, want *core.Result) {
	t.Helper()
	got.Phase1.Duration, want.Phase1.Duration = 0, 0
	got.Phase2.Duration, want.Phase2.Duration = 0, 0
	if got.Verdict != want.Verdict {
		t.Fatalf("%s: verdict %v, sequential %v", tag, got.Verdict, want.Verdict)
	}
	if got.Phase1 != want.Phase1 {
		t.Fatalf("%s: phase 1 stats %+v, sequential %+v", tag, got.Phase1, want.Phase1)
	}
	if got.Phase2 != want.Phase2 {
		t.Fatalf("%s: phase 2 stats %+v, sequential %+v", tag, got.Phase2, want.Phase2)
	}
	gv, wv := got.Violation, want.Violation
	if (gv == nil) != (wv == nil) {
		t.Fatalf("%s: violation %v, sequential %v", tag, gv, wv)
	}
	if gv != nil {
		gj, _ := json.Marshal(gv)
		wj, _ := json.Marshal(wv)
		if string(gj) != string(wj) {
			t.Fatalf("%s: violation differs:\n got %s\nwant %s", tag, gj, wj)
		}
	}
	if len(got.Failures) != len(want.Failures) {
		t.Fatalf("%s: %d failures, sequential %d", tag, len(got.Failures), len(want.Failures))
	}
	for i := range got.Failures {
		g, w := got.Failures[i], want.Failures[i]
		if g.Kind != w.Kind || g.Message != w.Message || fmt.Sprint(g.Schedule) != fmt.Sprint(w.Schedule) {
			t.Fatalf("%s: failure %d differs:\n got %s\nwant %s", tag, i, g, w)
		}
	}
}

// TestDistMatchesSequentialPass: the merged distributed result on passing
// subjects (including one whose test produces stuck histories) is
// bit-identical to the sequential exhaustive check, across reductions,
// split depths, and relaxed criteria.
func TestDistMatchesSequentialPass(t *testing.T) {
	sched.RequireNoLeaks(t)
	inc, get, dec := counterOps()
	cases := []struct {
		name string
		m    *core.Test
		opts core.Options
	}{
		{"plain", &core.Test{Rows: [][]core.Op{{inc, get}, {inc, get}}}, core.Options{}},
		{"stuck", &core.Test{Rows: [][]core.Op{{dec}, {inc, dec}}}, core.Options{}},
		{"reduction", &core.Test{Rows: [][]core.Op{{inc, get}, {inc, get}}}, core.Options{Reduction: sched.ReductionSleep}},
		{"seqcons", &core.Test{Rows: [][]core.Op{{inc, get}, {inc}}}, core.Options{Consistency: core.SequentialConsistency}},
	}
	for _, tc := range cases {
		sub := counterSubject()
		seqOpts := tc.opts
		seqOpts.ExhaustPhase2 = true
		want := mustCheck(t, sub, tc.m, seqOpts)
		if want.Verdict != core.Pass {
			t.Fatalf("%s: fixture does not pass: %v", tc.name, want.Violation)
		}
		for _, depth := range []int{1, 2} {
			got, err := distCheck(sub, tc.m, tc.opts, depth)
			if err != nil {
				t.Fatalf("%s depth=%d: distCheck: %v", tc.name, depth, err)
			}
			requireSameResult(t, fmt.Sprintf("%s depth=%d", tc.name, depth), got, want)
		}
	}
}

// TestDistMatchesSequentialFail: on the Counter1 lost update the merged
// verdict and the regenerated first violation are bit-identical to the
// sequential exhaustive check — and the violation also equals the one the
// non-exhaustive sequential check stops at, proving the (unit, visit)
// ordering reproduces the sequential first-violation position.
func TestDistMatchesSequentialFail(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := counter1Subject()
	inc, get := sub.Ops[0], sub.Ops[1]
	m := &core.Test{Rows: [][]core.Op{{inc, get}, {inc}}}
	for _, red := range []sched.Reduction{sched.ReductionNone, sched.ReductionSleep} {
		opts := core.Options{Reduction: red}
		seqOpts := opts
		seqOpts.ExhaustPhase2 = true
		want := mustCheck(t, sub, m, seqOpts)
		first := mustCheck(t, sub, m, opts)
		if want.Verdict != core.Fail || first.Verdict != core.Fail {
			t.Fatalf("red=%v: Counter1 fixture does not fail", red)
		}
		wj, _ := json.Marshal(want.Violation)
		fj, _ := json.Marshal(first.Violation)
		if string(wj) != string(fj) {
			t.Fatalf("red=%v: exhaustive and first-stop violations differ:\n%s\n%s", red, wj, fj)
		}
		for _, depth := range []int{1, 2} {
			got, err := distCheck(sub, m, opts, depth)
			if err != nil {
				t.Fatalf("red=%v depth=%d: distCheck: %v", red, depth, err)
			}
			requireSameResult(t, fmt.Sprintf("red=%v depth=%d", red, depth), got, want)
		}
	}
}

// distHarness wraps the correct counter with deterministic injected panics
// (faults fire exactly when two operations overlap, a pure function of the
// schedule) so distributed and sequential runs see the same failing
// executions.
func distHarness(t *testing.T) (*core.Subject, *core.Test) {
	t.Helper()
	sched.RequireNoLeaks(t)
	h := faultinject.New(faultinject.KindPanic)
	t.Cleanup(h.Release)
	sub := h.Wrap(counterSubject())
	inc, _ := sub.FindOp("Inc()")
	get, _ := sub.FindOp("Get()")
	return sub, &core.Test{Rows: [][]core.Op{{inc, get}, {inc}}}
}

// TestDistFailureSemantics: the merge applies Options.MaxFailures with the
// sequential precedence — contained failures merge into the same Failures
// list, a zero budget reproduces the sequential first-failure abort error,
// and an overflowing budget reproduces the same *TooManyFailuresError.
func TestDistFailureSemantics(t *testing.T) {
	sub, m := distHarness(t)
	contained := core.Options{MaxFailures: 10000}
	seqOpts := contained
	seqOpts.ExhaustPhase2 = true
	want := mustCheck(t, sub, m, seqOpts)
	if len(want.Failures) < 3 {
		t.Fatalf("fixture produced only %d failures; budget cases would be vacuous", len(want.Failures))
	}
	got, err := distCheck(sub, m, contained, 2)
	if err != nil {
		t.Fatalf("contained distCheck: %v", err)
	}
	requireSameResult(t, "contained", got, want)

	_, seqErr := core.Check(sub, m, core.Options{ExhaustPhase2: true})
	_, distErr := distCheck(sub, m, core.Options{}, 2)
	if seqErr == nil || distErr == nil {
		t.Fatalf("strict runs did not abort: seq=%v dist=%v", seqErr, distErr)
	}
	if firstLine(seqErr.Error()) != firstLine(distErr.Error()) {
		t.Fatalf("strict abort differs:\n seq  %s\n dist %s", firstLine(seqErr.Error()), firstLine(distErr.Error()))
	}

	over := core.Options{MaxFailures: 2, ExhaustPhase2: true}
	var seqTM, distTM *core.TooManyFailuresError
	if _, err := core.Check(sub, m, over); !errors.As(err, &seqTM) {
		t.Fatalf("sequential over-budget run: %v", err)
	}
	if _, err := distCheck(sub, m, core.Options{MaxFailures: 2}, 2); !errors.As(err, &distTM) {
		t.Fatalf("distributed over-budget run: %v", err)
	}
	if seqTM.Limit != distTM.Limit || len(seqTM.Failures) != len(distTM.Failures) {
		t.Fatalf("budget errors differ: seq %+v dist %+v", seqTM, distTM)
	}
	for i := range seqTM.Failures {
		s, d := seqTM.Failures[i], distTM.Failures[i]
		if s.Kind != d.Kind || s.Message != d.Message || fmt.Sprint(s.Schedule) != fmt.Sprint(d.Schedule) {
			t.Fatalf("budget failure %d differs:\n seq  %s\n dist %s", i, s, d)
		}
	}
}

// TestCheckUnitIdempotent: replaying a unit yields a byte-identical report —
// the property that makes at-least-once lease reassignment safe.
func TestCheckUnitIdempotent(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := counterSubject()
	inc, get, _ := counterOps()
	m := &core.Test{Rows: [][]core.Op{{inc, get}, {inc, get}}}
	opts := core.Options{Reduction: sched.ReductionSleep}
	plan, err := core.PlanUnits(sub, m, opts, 2)
	if err != nil {
		t.Fatalf("PlanUnits: %v", err)
	}
	for _, u := range plan.Units {
		r1, err := core.CheckUnit(sub, m, opts, u, nil)
		if err != nil {
			t.Fatalf("CheckUnit(%d): %v", u.Seq, err)
		}
		r2, err := core.CheckUnit(sub, m, opts, u, nil)
		if err != nil {
			t.Fatalf("CheckUnit(%d) replay: %v", u.Seq, err)
		}
		b1, _ := json.Marshal(r1)
		b2, _ := json.Marshal(r2)
		if string(b1) != string(b2) {
			t.Fatalf("unit %d replay not byte-identical:\n%s\n%s", u.Seq, b1, b2)
		}
	}
}

// TestCheckUnitTickAbort: a false tick (revoked lease) aborts the unit with
// ErrUnitAborted instead of returning a partial report.
func TestCheckUnitTickAbort(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := counterSubject()
	inc, get, _ := counterOps()
	m := &core.Test{Rows: [][]core.Op{{inc, get}, {inc, get}}}
	plan, err := core.PlanUnits(sub, m, core.Options{}, 1)
	if err != nil {
		t.Fatalf("PlanUnits: %v", err)
	}
	aborted := false
	for _, u := range plan.Units {
		ticks := 0
		rep, err := core.CheckUnit(sub, m, core.Options{}, u, func() bool {
			ticks++
			return ticks <= 1
		})
		if err == nil {
			continue // single-execution unit: never re-ticked
		}
		if !errors.Is(err, core.ErrUnitAborted) || rep != nil {
			t.Fatalf("unit %d: rep=%v err=%v, want nil report with ErrUnitAborted", u.Seq, rep, err)
		}
		aborted = true
	}
	if !aborted {
		t.Fatal("no unit was large enough to abort; fixture too small")
	}
}

// TestMergeNondetAndCoverage: the merge propagates a phase-1 nondeterminism
// verdict without any units, and rejects incomplete report sets.
func TestMergeNondetAndCoverage(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := counterSubject()
	inc, get, _ := counterOps()
	m := &core.Test{Rows: [][]core.Op{{inc, get}, {inc}}}
	v := &core.Violation{Kind: core.Nondeterminism, Test: m, Nondet: &history.NondetWitness{}}
	res, err := core.MergeUnitReports(sub, m, core.Options{}, &core.UnitPlan{Nondet: v}, nil)
	if err != nil || res.Verdict != core.Fail || res.Violation != v {
		t.Fatalf("nondet plan merge: res=%v err=%v", res, err)
	}
	plan, err := core.PlanUnits(sub, m, core.Options{}, 2)
	if err != nil {
		t.Fatalf("PlanUnits: %v", err)
	}
	if len(plan.Units) < 2 {
		t.Fatalf("fixture split into %d units; incompleteness case is vacuous", len(plan.Units))
	}
	rep, err := core.CheckUnit(sub, m, core.Options{}, plan.Units[0], nil)
	if err != nil {
		t.Fatalf("CheckUnit: %v", err)
	}
	if _, err := core.MergeUnitReports(sub, m, core.Options{}, plan, []*core.UnitReport{rep}); err == nil {
		t.Fatal("merge accepted an incomplete report set")
	}
	dup := []*core.UnitReport{rep}
	for len(dup) < len(plan.Units) {
		dup = append(dup, rep)
	}
	if _, err := core.MergeUnitReports(sub, m, core.Options{}, plan, dup); err == nil {
		t.Fatal("merge accepted duplicate reports for one unit")
	}
}
