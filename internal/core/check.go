package core

import (
	"fmt"
	"strings"
	"time"

	"lineup/internal/history"
	"lineup/internal/monitor"
	"lineup/internal/sched"
	"lineup/internal/telemetry"
)

// Preemption-bound sentinels for Options.PreemptionBound.
const (
	// DefaultBound is the CHESS default the paper uses ("2, except where it
	// performed unacceptably slow").
	DefaultBound = 2
	// Unbounded disables preemption bounding in phase 2.
	Unbounded = sched.Unbounded
	// NoPreemptions allows zero preemptions (only voluntary switches at
	// blocking and termination points).
	NoPreemptions = -2
)

// Options configures Check.
type Options struct {
	// PreemptionBound bounds preemptive context switches in phase 2. The
	// zero value selects DefaultBound; use NoPreemptions for an explicit
	// bound of zero and Unbounded for no bounding.
	PreemptionBound int
	// Granularity selects the preemption granularity of phase 2.
	Granularity sched.Granularity
	// MaxExecutionsPerPhase is a safety net against schedule-space blowups
	// (0 = default 2,000,000).
	MaxExecutionsPerPhase int
	// KeepSpec retains the synthesized specification in the result (needed
	// for writing observation files; costs memory).
	KeepSpec bool
	// ExhaustPhase2 keeps exploring after the first violation so that
	// statistics cover the whole schedule space. The first violation is
	// still the one reported.
	ExhaustPhase2 bool
	// RelaxedOps lists operations (by display name, e.g. "Count()") whose
	// results are treated as nondeterministic: they are wildcarded before
	// specification synthesis and witness checking (see Options.Relax).
	RelaxedOps []string
	// Consistency selects the correctness criterion for complete histories:
	// strict linearizability (the zero value), sequential consistency, or
	// quiescent consistency (see the Consistency constants). The relaxed
	// criteria require the spec-lookup witness backend; combining them with
	// WitnessMonitor is an error. Stuck histories are always checked
	// strictly.
	Consistency Consistency
	// Coverage, when non-nil, accumulates the (MemKind, location) footprint
	// pairs and canonical phase-2 history hashes the check observes. It is
	// the feedback signal of coverage-guided generation (Generate) and is
	// observe-only: it never influences a verdict. One Coverage may be
	// shared across many checks; phase 1 (serial executions) contributes no
	// pairs, so the signal stays concurrency-specific.
	Coverage *Coverage
	// SampleSchedules, when positive, replaces exhaustive phase-2
	// exploration with this many randomly sampled schedules (see
	// SampleStrategy). Sampling gives up the coverage of exhaustive
	// preemption-bounded search but scales to long tests; any violation it
	// finds is still a proof of non-linearizability (completeness is
	// per-violation, not per-search).
	SampleSchedules int
	// SampleStrategy selects the sampling scheduler (random walk or PCT).
	SampleStrategy sched.Strategy
	// SampleSeed makes schedule sampling reproducible.
	SampleSeed int64
	// PCTDepth is the PCT bug-depth parameter (0 = default).
	PCTDepth int
	// WitnessSearch selects phase 2's witness decision backend: spec-set
	// lookup (the default, Fig. 5) or the monitor's model-replay search.
	WitnessSearch WitnessSearch
	// MonitorModel is the executable sequential model consulted when
	// WitnessSearch is WitnessMonitor (see CheckWithMonitor).
	MonitorModel *monitor.Model
	// Workers, when > 1, explores the phase-2 schedule space with that many
	// prefix-sharded workers (sched.ExploreParallel) instead of the
	// sequential DFS. The verdict, the reported violation, and — on passing
	// or exhaustive runs — the phase statistics are identical to the
	// sequential explorer's regardless of worker count; on runs that stop at
	// a violation the execution counts may exceed the sequential ones (early
	// cancellation abandons strictly-later work but lets in-flight work
	// finish). 0 or 1 selects the sequential explorer; sampling
	// (SampleSchedules) and phase 1 ignore Workers.
	Workers int
	// ShardProgress, when non-nil and Workers > 1, receives progress
	// snapshots of the parallel exploration (shards created/retired,
	// executions run). It is called under an internal lock and must return
	// quickly.
	ShardProgress func(sched.ShardProgress)
	// Watchdog, when positive, arms the scheduler's wall-clock watchdog on
	// every execution: a subject that blocks on an uninstrumented primitive
	// or spins without yielding is abandoned after this interval and
	// reported as a hung execution instead of hanging the checker. See
	// sched.Config.Watchdog.
	Watchdog time.Duration
	// DetectLeaks reports subject goroutines that survive an execution
	// (raw `go` statements escaping the scheduler) as leak failures. It is
	// process-global, so it is forced off whenever executions run
	// concurrently (Workers > 1 here, or RandomOptions.Workers > 1).
	DetectLeaks bool
	// Reduction selects the explorer's partial-order reduction for phase 2
	// (sched.ReductionNone or sched.ReductionSleep). Sleep-set reduction
	// prunes schedules that only reorder independent steps; the verdict, the
	// reported violation, and the set of distinct histories are bit-identical
	// to an unreduced run while Executions drops (often by several times).
	// Phase 1 is serial and never reduced; sampling ignores Reduction.
	Reduction sched.Reduction
	// MaxFailures enables graceful degradation in phase 2: up to this many
	// failed executions (panic, hung, leak) are classified and recorded in
	// Result.Failures while exploration continues, instead of aborting the
	// check at the first failure. Exceeding the budget aborts with
	// *TooManyFailuresError. Zero keeps the strict behavior: the first
	// failure aborts the check with its error. The recorded set and the
	// sequentially-first failure are deterministic for any Workers count.
	// Phase 1 is always strict: serial executions run deterministic subject
	// code whose failures are not schedule-dependent.
	MaxFailures int
	// Telemetry, when non-nil, collects counters and phase wall-clock spans
	// from both phases, the explorer, and the witness backend (see package
	// telemetry). It is observe-only: every value reported in Result and
	// PhaseStats is computed from the deterministic explorer statistics,
	// never read back from the collector, so enabling telemetry cannot
	// change a verdict. One collector may be shared across tests and phases.
	Telemetry *telemetry.Collector
}

// schedConfig assembles the per-execution scheduler configuration the
// options imply; every exploration core starts goes through it so that the
// containment settings apply uniformly.
func (o Options) schedConfig(serial, recordTrace bool) sched.Config {
	return sched.Config{
		Serial:        serial,
		Granularity:   o.Granularity,
		RecordTrace:   recordTrace,
		Watchdog:      o.Watchdog,
		DetectLeaks:   o.DetectLeaks,
		TrackCoverage: o.Coverage != nil && !serial,
	}
}

func (o Options) bound() int {
	switch o.PreemptionBound {
	case 0:
		return DefaultBound
	case NoPreemptions:
		return 0
	default:
		return o.PreemptionBound
	}
}

func (o Options) maxExecs() int {
	if o.MaxExecutionsPerPhase == 0 {
		return 2000000
	}
	return o.MaxExecutionsPerPhase
}

// Verdict is the outcome of a check.
type Verdict int

const (
	// Pass means no violation of deterministic linearizability was found for
	// this test (Check returned PASS).
	Pass Verdict = iota
	// Fail means the implementation is not linearizable with respect to any
	// deterministic sequential specification (Theorem 5).
	Fail
)

func (v Verdict) String() string {
	if v == Pass {
		return "PASS"
	}
	return "FAIL"
}

// ViolationKind classifies how the check failed.
type ViolationKind int

const (
	// Nondeterminism: phase 1 observed two serial histories whose longest
	// common prefix ends in a call (line 4 of Fig. 5).
	Nondeterminism ViolationKind = iota
	// NoWitness: phase 2 observed a complete concurrent history with no
	// serial witness in the synthesized specification (line 8 of Fig. 5).
	NoWitness
	// StuckNoWitness: phase 2 observed a stuck history one of whose pending
	// operations has no stuck serial witness (line 13 of Fig. 5).
	StuckNoWitness
)

func (k ViolationKind) String() string {
	switch k {
	case Nondeterminism:
		return "nondeterministic serial behavior"
	case NoWitness:
		return "concurrent history with no serial witness"
	case StuckNoWitness:
		return "stuck history with no stuck serial witness"
	default:
		return "unknown violation"
	}
}

// Violation describes a failed check; any violation is a proof that the
// implementation is not deterministically linearizable.
type Violation struct {
	Kind    ViolationKind
	Test    *Test
	Nondet  *history.NondetWitness // Nondeterminism only
	History *history.History       // NoWitness and StuckNoWitness
	Pending *history.Op            // StuckNoWitness: the unjustified pending operation
}

// String renders a report in the spirit of Fig. 7 (bottom).
func (v *Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Line-Up encountered a violation: %s\n", v.Kind)
	fmt.Fprintf(&b, "test:\n%s", v.Test.String())
	switch v.Kind {
	case Nondeterminism:
		fmt.Fprintf(&b, "%s\n", v.Nondet)
	default:
		fmt.Fprintf(&b, "history:\n%s", v.History.String())
		if v.Pending != nil {
			fmt.Fprintf(&b, "pending operation with no stuck serial witness: %s\n", v.Pending)
		}
	}
	return b.String()
}

// PhaseStats are per-phase measurements matching the columns of Table 2.
type PhaseStats struct {
	Executions int           // schedules explored
	Decisions  int           // scheduling decisions taken
	Histories  int           // distinct full histories observed
	Stuck      int           // distinct stuck histories observed
	Pruned     int           // branches skipped by partial-order reduction
	DedupHits  int           // executions answered by the history cache
	Duration   time.Duration // wall-clock time of the phase
}

// Result is the outcome of Check on one test.
type Result struct {
	Subject *Subject
	Test    *Test
	Verdict Verdict
	// Violation is non-nil iff Verdict == Fail. A result restored from a
	// checkpoint keeps Violation nil even when failed; RandomCheck re-runs
	// the first failing test to regenerate the full report.
	Violation *Violation
	Phase1    PhaseStats
	Phase2    PhaseStats
	// Failures are the contained runtime failures phase 2 recorded (only
	// with Options.MaxFailures > 0), in sequential exploration order. A
	// failed execution contributes no history, so it never produces a
	// violation; it is reported here instead.
	Failures []RuntimeFailure
	// Spec is the specification synthesized in phase 1 (nil unless
	// Options.KeepSpec).
	Spec *history.Spec
}

// Check implements the two-phase function Check(X, m) of Fig. 5. Phase 1
// enumerates all serial executions of the test (without preemption
// bounding) and synthesizes the candidate deterministic specification;
// phase 2 enumerates concurrent executions under the preemption bound and
// checks every complete history for a serial witness and every stuck
// history for stuck serial witnesses. A FAIL result proves that the subject
// is not linearizable with respect to any deterministic sequential
// specification (Theorem 5); PASS is sound only with respect to this test
// and the explored schedules (Theorem 6 and the bounding caveat of
// Section 4.3).
func Check(sub *Subject, m *Test, opts Options) (*Result, error) {
	spec, p1, err := SynthesizeSpec(sub, m, opts)
	if err != nil {
		return nil, err
	}
	res, err := phase2(sub, m, spec, opts, modeGeneralized)
	if err != nil {
		return nil, err
	}
	res.Phase1 = p1
	return res, nil
}
