package core

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// AutoOptions configures AutoCheck. Because AutoCheck does not terminate on
// correct implementations (footnote 3 of the paper), callers bound it.
type AutoOptions struct {
	Options
	// MaxN bounds the matrix dimension n (Fig. 6 increments n forever).
	MaxN int
	// MaxTests bounds the total number of tests checked across all n.
	MaxTests int
	// CoverageGuided replaces Fig. 6's exhaustive dimension-by-dimension
	// enumeration with coverage-guided mutation (Generate): MaxN caps the
	// matrix shape, MaxTests is the budget, and Seed drives the mutation
	// stream.
	CoverageGuided bool
	// Seed is the mutation seed of a coverage-guided run.
	Seed int64
}

// AutoResult is the outcome of a bounded AutoCheck run.
type AutoResult struct {
	// Failed is the first failing check, nil if every test passed.
	Failed *Result
	// Tests is the number of tests checked.
	Tests int
	// Exhausted reports whether the bounds were hit without finding a
	// violation (so the implementation may still be incorrect).
	Exhausted bool
}

// AutoCheck implements the algorithm AutoCheck(X) of Fig. 6, bounded by
// opts.MaxN and opts.MaxTests: for n = 1, 2, ... it checks every n×n test
// whose entries are drawn from the first n representative invocations of
// the subject, returning at the first failure.
func AutoCheck(sub *Subject, opts AutoOptions) (*AutoResult, error) {
	res := &AutoResult{}
	maxN := opts.MaxN
	if maxN <= 0 {
		maxN = 2
	}
	maxTests := opts.MaxTests
	if maxTests <= 0 {
		maxTests = 10000
	}
	if opts.CoverageGuided {
		g, err := Generate(sub, GenOptions{
			Options:    opts.Options,
			Seed:       opts.Seed,
			Budget:     maxTests,
			MaxThreads: maxN,
			MaxOps:     maxN,
		})
		if err != nil {
			return nil, err
		}
		return &AutoResult{Failed: g.Failed, Tests: g.Tests, Exhausted: g.Exhausted}, nil
	}
	for n := 1; n <= maxN; n++ {
		universe := sub.Ops
		if n < len(universe) {
			universe = universe[:n]
		}
		stop, err := enumerateMatrices(universe, n, n, func(m *Test) (bool, error) {
			if res.Tests >= maxTests {
				res.Exhausted = true
				return false, nil
			}
			res.Tests++
			r, err := Check(sub, m, opts.Options)
			if err != nil {
				return false, err
			}
			if r.Verdict == Fail {
				res.Failed = r
				return false, nil
			}
			return true, nil
		})
		if err != nil {
			return nil, err
		}
		if stop {
			return res, nil
		}
	}
	res.Exhausted = res.Failed == nil
	return res, nil
}

// enumerateMatrices calls visit for every rows×cols matrix with entries in
// universe, in lexicographic order. visit returns (continue, error); the
// function reports whether enumeration was stopped early.
func enumerateMatrices(universe []Op, rows, cols int, visit func(*Test) (bool, error)) (stopped bool, err error) {
	cells := rows * cols
	idx := make([]int, cells)
	for {
		m := &Test{}
		for r := 0; r < rows; r++ {
			row := make([]Op, cols)
			for c := 0; c < cols; c++ {
				row[c] = universe[idx[r*cols+c]]
			}
			m.Rows = append(m.Rows, row)
		}
		cont, verr := visit(m)
		if verr != nil {
			return true, verr
		}
		if !cont {
			return true, nil
		}
		// Advance the odometer.
		i := cells - 1
		for i >= 0 {
			idx[i]++
			if idx[i] < len(universe) {
				break
			}
			idx[i] = 0
			i--
		}
		if i < 0 {
			return false, nil
		}
	}
}

// RandomOptions configures RandomCheck.
type RandomOptions struct {
	Options
	// Rows and Cols give the test matrix dimension (the paper's evaluation
	// uses 3×3).
	Rows, Cols int
	// Samples is the number of random tests (the paper uses 100).
	Samples int
	// Seed makes the sample reproducible.
	Seed int64
	// Workers runs whole checks (one test per worker) on this many
	// OS-level workers (the "embarrassingly parallel" distribution of
	// Section 4.3). 0 or 1 is sequential. This field shadows the embedded
	// Options.Workers, which instead parallelizes the phase-2 schedule
	// exploration *within* one check; set that one explicitly
	// (opts.Options.Workers) to shard individual explorations. The two
	// compose but usually over-subscribe the machine — prefer test-level
	// parallelism for many small tests and exploration-level parallelism
	// for few large ones.
	Workers int
	// StopAtFirstFailure ends the run at the first failing test.
	StopAtFirstFailure bool
	// Progress, when non-nil, is called after every completed test with the
	// number of tests finished so far (including any restored from a resumed
	// checkpoint) and the total sample size. Calls are serialized; the hook
	// must return quickly and must not call back into the checker.
	Progress func(done, total int)
	// Init and Final are fixed initial/final invocation sequences attached
	// to every sampled test (Section 4.3).
	Init, Final []Op
	// Checkpoint, when non-nil, receives the accumulated checkpoint state
	// after every completed test (typically to RandomCheckpoint.Save it).
	// Calls are serialized under an internal lock; a checkpoint error aborts
	// the run.
	Checkpoint func(*RandomCheckpoint) error
	// Resume, when non-nil, restores the results recorded in a previously
	// saved checkpoint and checks only the remaining tests. The checkpoint's
	// sampling configuration must match this run's; the test sequence is
	// regenerated from the shared seed, so restored and freshly checked
	// results compose into exactly the sequence an uninterrupted run
	// produces.
	Resume *RandomCheckpoint
}

// RandomSummary aggregates a RandomCheck run; its fields correspond to the
// phase-1/phase-2 columns of Table 2.
type RandomSummary struct {
	Subject *Subject
	Passed  int
	Failed  int
	// FirstFailure is the first failing result in sample order (nil if all
	// passed).
	FirstFailure *Result
	// Results holds the per-test results in sample order (may contain nils
	// after an early stop).
	Results []*Result

	// Aggregated phase statistics.
	SerialHistAvg  float64
	SerialHistMax  int
	Phase1TimeAvg  time.Duration
	Phase1TimeMax  time.Duration
	Phase2PassAvg  time.Duration // avg phase-2 time of passing tests
	Phase2FailAvg  time.Duration // avg phase-2 time of failing tests
	StuckTests     int           // tests that exhibited at least one stuck history
	TotalDuration  time.Duration
	PreemptionUsed int
}

// RandomCheck implements RandomCheck(X, I, i, j, n) of Fig. 8: it draws a
// uniform random sample of tests from the i×j matrices over the invocation
// universe and checks each. Like Check it is complete (any FAIL is a true
// violation) but not sound (bugs may be missed).
func RandomCheck(sub *Subject, universe []Op, opts RandomOptions) (*RandomSummary, error) {
	if len(universe) == 0 {
		universe = sub.Ops
	}
	if opts.Workers > 1 {
		// Leak detection counts process-global goroutines; concurrent checks
		// on sibling workers would see each other's scheduler threads.
		opts.DetectLeaks = false
	}
	rows, cols := opts.Rows, opts.Cols
	if rows <= 0 {
		rows = 3
	}
	if cols <= 0 {
		cols = 3
	}
	samples := opts.Samples
	if samples <= 0 {
		samples = 100
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	tests := make([]*Test, samples)
	for k := 0; k < samples; k++ {
		m := &Test{Init: opts.Init, Final: opts.Final}
		for r := 0; r < rows; r++ {
			row := make([]Op, cols)
			for c := 0; c < cols; c++ {
				row[c] = universe[rng.Intn(len(universe))]
			}
			m.Rows = append(m.Rows, row)
		}
		tests[k] = m
	}

	sum := &RandomSummary{Subject: sub, Results: make([]*Result, samples), PreemptionUsed: opts.bound()}
	cp := &RandomCheckpoint{
		Version:   randomCheckpointVersion,
		Subject:   sub.Name,
		Seed:      opts.Seed,
		Rows:      rows,
		Cols:      cols,
		Samples:   samples,
		Bound:     opts.bound(),
		Reduction: opts.Reduction.String(),
	}
	done := make([]bool, samples)
	completed := 0
	if opts.Resume != nil {
		if err := opts.Resume.validate(sub.Name, opts.Seed, rows, cols, samples, opts.bound(), opts.Reduction.String()); err != nil {
			return nil, err
		}
		for _, t := range opts.Resume.Tests {
			if t == nil || done[t.Index] {
				continue
			}
			done[t.Index] = true
			completed++
			sum.Results[t.Index] = t.restore(sub, tests[t.Index])
			cp.Tests = append(cp.Tests, t)
		}
	}
	if opts.Progress != nil && completed > 0 {
		opts.Progress(completed, samples)
	}
	// finish records a completed test under the caller's lock and forwards
	// the checkpoint; its error aborts the run like a check error.
	finish := func(k int, r *Result) error {
		sum.Results[k] = r
		done[k] = true
		completed++
		if opts.Progress != nil {
			opts.Progress(completed, samples)
		}
		if opts.Checkpoint == nil {
			return nil
		}
		cp.record(k, r)
		return opts.Checkpoint(cp)
	}
	stopAt := func(k int) bool {
		r := sum.Results[k]
		return r != nil && r.Verdict == Fail && opts.StopAtFirstFailure
	}
	start := time.Now()
	var firstErr error
	if opts.Workers > 1 {
		var (
			mu   sync.Mutex
			wg   sync.WaitGroup
			next int
			stop bool
		)
		for w := 0; w < opts.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					mu.Lock()
					for next < samples && done[next] {
						if stopAt(next) {
							stop = true
						}
						next++
					}
					if stop || next >= samples || firstErr != nil {
						mu.Unlock()
						return
					}
					k := next
					next++
					mu.Unlock()
					r, err := Check(sub, tests[k], opts.Options)
					mu.Lock()
					if err != nil && firstErr == nil {
						firstErr = err
					}
					if r != nil {
						if cerr := finish(k, r); cerr != nil && firstErr == nil {
							firstErr = cerr
						}
						if r.Verdict == Fail && opts.StopAtFirstFailure {
							stop = true
						}
					}
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
	} else {
		for k := 0; k < samples; k++ {
			if done[k] {
				if stopAt(k) {
					break
				}
				continue
			}
			r, err := Check(sub, tests[k], opts.Options)
			if err != nil {
				firstErr = err
				break
			}
			if err := finish(k, r); err != nil {
				firstErr = err
				break
			}
			if r.Verdict == Fail && opts.StopAtFirstFailure {
				break
			}
		}
	}
	if firstErr != nil {
		return nil, fmt.Errorf("lineup: RandomCheck on %s: %w", sub.Name, firstErr)
	}
	sum.TotalDuration = time.Since(start)
	aggregate(sum)
	// A first failure restored from a checkpoint carries no violation
	// details (they are not serialized); Check is deterministic, so
	// re-running that one test regenerates the identical report.
	if f := sum.FirstFailure; f != nil && f.Violation == nil {
		r, err := Check(sub, f.Test, opts.Options)
		if err != nil {
			return nil, fmt.Errorf("lineup: RandomCheck on %s: regenerating first failure: %w", sub.Name, err)
		}
		r.Phase1, r.Phase2, r.Failures = f.Phase1, f.Phase2, f.Failures
		for k := range sum.Results {
			if sum.Results[k] == f {
				sum.Results[k] = r
			}
		}
		sum.FirstFailure = r
	}
	return sum, nil
}

func aggregate(sum *RandomSummary) {
	var (
		serialTotal, checked            int
		p1Total, p2PassTotal, p2FailTot time.Duration
		passN, failN                    int
	)
	for _, r := range sum.Results {
		if r == nil {
			continue
		}
		checked++
		nHist := r.Phase1.Histories + r.Phase1.Stuck
		serialTotal += nHist
		if nHist > sum.SerialHistMax {
			sum.SerialHistMax = nHist
		}
		p1Total += r.Phase1.Duration
		if r.Phase1.Duration > sum.Phase1TimeMax {
			sum.Phase1TimeMax = r.Phase1.Duration
		}
		if r.Phase1.Stuck > 0 || r.Phase2.Stuck > 0 {
			sum.StuckTests++
		}
		if r.Verdict == Fail {
			sum.Failed++
			failN++
			p2FailTot += r.Phase2.Duration
			if sum.FirstFailure == nil {
				sum.FirstFailure = r
			}
		} else {
			sum.Passed++
			passN++
			p2PassTotal += r.Phase2.Duration
		}
	}
	if checked > 0 {
		sum.SerialHistAvg = float64(serialTotal) / float64(checked)
		sum.Phase1TimeAvg = p1Total / time.Duration(checked)
	}
	if passN > 0 {
		sum.Phase2PassAvg = p2PassTotal / time.Duration(passN)
	}
	if failN > 0 {
		sum.Phase2FailAvg = p2FailTot / time.Duration(failN)
	}
}
