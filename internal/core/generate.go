package core

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
)

// Mutator derives new test matrices from existing ones by structural
// mutation over a fixed invocation universe. Every mutation preserves
// well-formedness: between 1 and maxRows threads, between 1 and maxCols
// invocations per thread, every cell drawn from the universe. All
// randomness flows through the single rng handed to NewMutator, so a fixed
// seed yields a fixed mutation sequence.
type Mutator struct {
	universe []Op
	maxRows  int
	maxCols  int
	rng      *rand.Rand
}

// NewMutator creates a mutator over the given universe and shape caps
// (values < 1 become 1).
func NewMutator(universe []Op, maxRows, maxCols int, rng *rand.Rand) *Mutator {
	if maxRows < 1 {
		maxRows = 1
	}
	if maxCols < 1 {
		maxCols = 1
	}
	return &Mutator{universe: universe, maxRows: maxRows, maxCols: maxCols, rng: rng}
}

// randOp draws a uniform invocation from the universe.
func (mu *Mutator) randOp() Op {
	return mu.universe[mu.rng.Intn(len(mu.universe))]
}

// pos picks a uniform (row, col) cell of the matrix.
func (mu *Mutator) pos(m *Test) (r, c int) {
	n := 0
	for _, row := range m.Rows {
		n += len(row)
	}
	k := mu.rng.Intn(n)
	for i, row := range m.Rows {
		if k < len(row) {
			return i, k
		}
		k -= len(row)
	}
	panic("unreachable")
}

// Mutate returns a well-formed mutant of m (m itself is not modified). One
// of seven mutations is applied: replace an invocation, swap two
// invocations, insert or delete an invocation, perturb an invocation's
// arguments (same method, different arguments), or add or remove a thread.
// Mutations whose precondition fails (e.g. deleting from a one-invocation
// thread) fall through to another attempt; after a bounded number of
// attempts the mutant is returned possibly unchanged, which is harmless
// (the duplicate brings no new coverage and is simply not admitted).
func (mu *Mutator) Mutate(m *Test) *Test {
	c := m.Clone()
	for tries := 0; tries < 16; tries++ {
		if mu.mutateOnce(c) {
			return c
		}
	}
	return c
}

func (mu *Mutator) mutateOnce(c *Test) bool {
	switch mu.rng.Intn(7) {
	case 0: // replace an invocation
		r, i := mu.pos(c)
		c.Rows[r][i] = mu.randOp()
		return true
	case 1: // swap two invocations (possibly across threads)
		r1, i1 := mu.pos(c)
		r2, i2 := mu.pos(c)
		c.Rows[r1][i1], c.Rows[r2][i2] = c.Rows[r2][i2], c.Rows[r1][i1]
		return true
	case 2: // insert an invocation
		r := mu.rng.Intn(len(c.Rows))
		row := c.Rows[r]
		if len(row) >= mu.maxCols {
			return false
		}
		i := mu.rng.Intn(len(row) + 1)
		row = append(row[:i:i], append([]Op{mu.randOp()}, row[i:]...)...)
		c.Rows[r] = row
		return true
	case 3: // delete an invocation
		r, i := mu.pos(c)
		if len(c.Rows[r]) <= 1 {
			return false
		}
		c.Rows[r] = append(c.Rows[r][:i:i], c.Rows[r][i+1:]...)
		return true
	case 4: // perturb arguments: same method, different arguments
		r, i := mu.pos(c)
		cur := c.Rows[r][i]
		var alts []Op
		for _, op := range mu.universe {
			if op.Method == cur.Method && op.Args != cur.Args {
				alts = append(alts, op)
			}
		}
		if len(alts) == 0 {
			return false
		}
		c.Rows[r][i] = alts[mu.rng.Intn(len(alts))]
		return true
	case 5: // add a thread
		if len(c.Rows) >= mu.maxRows {
			return false
		}
		c.Rows = append(c.Rows, []Op{mu.randOp()})
		return true
	default: // remove a thread
		if len(c.Rows) <= 1 {
			return false
		}
		r := mu.rng.Intn(len(c.Rows))
		c.Rows = append(c.Rows[:r:r], c.Rows[r+1:]...)
		return true
	}
}

// GenOptions configures Generate.
type GenOptions struct {
	Options
	// Seed drives every random decision of the run (parent selection and
	// mutation). Two runs with the same seed, subject, and options produce
	// bit-identical corpora and identical results.
	Seed int64
	// Budget is the number of tests to check, including the seed corpus
	// (default 200).
	Budget int
	// MaxThreads and MaxOps cap the mutated matrix shape (default 3×3, the
	// shape the paper's random evaluation uses).
	MaxThreads, MaxOps int
	// CorpusDir, when non-empty, receives the final corpus: one
	// corpus-NNNNNN.json per admitted test plus a manifest.json recording
	// the seed and totals. The directory is created if needed.
	CorpusDir string
	// KeepGoing continues past failing tests (measuring coverage growth);
	// by default Generate stops at the first violation.
	KeepGoing bool
	// Progress, when non-nil, is called after every checked test with the
	// count so far and the budget.
	Progress func(done, total int)
}

// GenResult summarizes a Generate run.
type GenResult struct {
	// Failed is the first failing check, nil if no violation was found.
	Failed *Result
	// Seed echoes the run's seed so that violation reports are reproducible.
	Seed int64
	// Tests is the number of tests checked; TestsToFailure is the count up
	// to and including the first failing one (0 when none failed).
	Tests          int
	TestsToFailure int
	// Accepted is the number of mutants admitted for new coverage (the seed
	// corpus is admitted unconditionally); CorpusSize the final corpus size.
	Accepted   int
	CorpusSize int
	// CoveragePairs and CoverageHists are the final coverage totals: distinct
	// (MemKind, location) footprint pairs and distinct canonical phase-2
	// histories.
	CoveragePairs int
	CoverageHists int
	// Exhausted reports that the budget ran out without a violation.
	Exhausted bool
}

// Generate is coverage-guided test generation: starting from a seed corpus
// of minimal matrices over the subject's invocation universe, it repeatedly
// mutates a random corpus member, checks the mutant, and admits it to the
// corpus iff the check observed a new (MemKind, location) footprint pair or
// a new canonical phase-2 history. The feedback steers the search toward
// tests that exercise new synchronization structure — contended code paths
// (a CAS retry, an elimination slot) that fixed-shape random sampling
// reaches only by luck.
//
// Like every Line-Up mode it is complete (a FAIL proves the subject is not
// linearizable with respect to any deterministic sequential specification)
// but not sound; the budget bounds the search.
func Generate(sub *Subject, opts GenOptions) (*GenResult, error) {
	if len(sub.Ops) == 0 {
		return nil, fmt.Errorf("lineup: Generate on %s: empty invocation universe", sub.Name)
	}
	budget := opts.Budget
	if budget <= 0 {
		budget = 200
	}
	maxRows := opts.MaxThreads
	if maxRows <= 0 {
		maxRows = 3
	}
	maxCols := opts.MaxOps
	if maxCols <= 0 {
		maxCols = 3
	}
	cov := NewCoverage()
	checkOpts := opts.Options
	checkOpts.Coverage = cov
	tel := opts.Telemetry

	rng := rand.New(rand.NewSource(opts.Seed))
	mut := NewMutator(sub.Ops, maxRows, maxCols, rng)
	res := &GenResult{Seed: opts.Seed}

	// The seed corpus: every invocation once against every other (2×1
	// matrices), which puts each pair of operations in conflict at least
	// once, plus one random full-shape matrix for early structural variety.
	var corpus []*Test
	for _, a := range sub.Ops {
		for _, b := range sub.Ops {
			corpus = append(corpus, &Test{Rows: [][]Op{{a}, {b}}})
		}
	}
	seedRandom := &Test{}
	for r := 0; r < maxRows; r++ {
		row := make([]Op, maxCols)
		for c := range row {
			row[c] = mut.randOp()
		}
		seedRandom.Rows = append(seedRandom.Rows, row)
	}
	corpus = append(corpus, seedRandom)

	// check runs one test, updates totals, and reports whether to stop.
	check := func(m *Test) (stop bool, admitted bool, err error) {
		beforePairs, beforeHists := cov.Pairs(), cov.Hists()
		r, err := Check(sub, m, checkOpts)
		if err != nil {
			return true, false, fmt.Errorf("lineup: Generate on %s: %w", sub.Name, err)
		}
		res.Tests++
		if tel != nil {
			tel.GenTests.Add(1)
		}
		if opts.Progress != nil {
			opts.Progress(res.Tests, budget)
		}
		if r.Verdict == Fail && res.Failed == nil {
			res.Failed = r
			res.TestsToFailure = res.Tests
			if !opts.KeepGoing {
				return true, false, nil
			}
		}
		return false, cov.Pairs() > beforePairs || cov.Hists() > beforeHists, nil
	}

	stopped := false
	// Seed tests are admitted regardless of coverage: they define the
	// baseline the feedback is measured against.
	for _, m := range corpus {
		if res.Tests >= budget {
			break
		}
		stop, _, err := check(m)
		if err != nil {
			return nil, err
		}
		if stop {
			stopped = true
			break
		}
	}
	for !stopped && res.Tests < budget {
		parent := corpus[rng.Intn(len(corpus))]
		mutant := mut.Mutate(parent)
		stop, admitted, err := check(mutant)
		if err != nil {
			return nil, err
		}
		if admitted {
			corpus = append(corpus, mutant)
			res.Accepted++
			if tel != nil {
				tel.GenAccepted.Add(1)
			}
		}
		stopped = stop
	}

	res.CorpusSize = len(corpus)
	res.CoveragePairs = cov.Pairs()
	res.CoverageHists = cov.Hists()
	res.Exhausted = res.Failed == nil
	if tel != nil {
		tel.GenCorpus.Store(int64(res.CorpusSize))
		tel.GenCovPairs.Store(int64(res.CoveragePairs))
		tel.GenCovHists.Store(int64(res.CoverageHists))
	}
	if opts.CorpusDir != "" {
		if err := writeCorpus(opts.CorpusDir, sub, opts.Seed, corpus, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// corpusManifest is the manifest.json schema of a persisted corpus.
type corpusManifest struct {
	Subject       string `json:"subject"`
	Seed          int64  `json:"seed"`
	Tests         int    `json:"tests"`
	CorpusSize    int    `json:"corpus_size"`
	CoveragePairs int    `json:"coverage_pairs"`
	CoverageHists int    `json:"coverage_hists"`
}

// corpusEntry is the schema of one corpus-NNNNNN.json: the matrix as rows of
// invocation display names.
type corpusEntry struct {
	Rows [][]string `json:"rows"`
}

// writeCorpus persists the corpus deterministically: entry files are named
// by corpus index and their contents depend only on the tests, so two
// same-seed runs write bit-identical directories.
func writeCorpus(dir string, sub *Subject, seed int64, corpus []*Test, res *GenResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("lineup: corpus dir: %w", err)
	}
	for i, m := range corpus {
		e := corpusEntry{}
		for _, row := range m.Rows {
			names := make([]string, len(row))
			for j, op := range row {
				names[j] = op.Name()
			}
			e.Rows = append(e.Rows, names)
		}
		data, err := json.MarshalIndent(e, "", "  ")
		if err != nil {
			return err
		}
		name := filepath.Join(dir, fmt.Sprintf("corpus-%06d.json", i))
		if err := os.WriteFile(name, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("lineup: corpus entry: %w", err)
		}
	}
	man := corpusManifest{
		Subject:       sub.Name,
		Seed:          seed,
		Tests:         res.Tests,
		CorpusSize:    res.CorpusSize,
		CoveragePairs: res.CoveragePairs,
		CoverageHists: res.CoverageHists,
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "manifest.json"), append(data, '\n'), 0o644)
}

// TestFromNames rebuilds a test from rows of invocation display names (the
// persisted corpus format), resolving each name in the subject's universe.
func TestFromNames(sub *Subject, rows [][]string) (*Test, error) {
	m := &Test{}
	for _, row := range rows {
		ops := make([]Op, len(row))
		for i, name := range row {
			op, ok := sub.FindOp(name)
			if !ok {
				return nil, fmt.Errorf("lineup: %s has no invocation %q", sub.Name, name)
			}
			ops[i] = op
		}
		m.Rows = append(m.Rows, ops)
	}
	return m, nil
}
