package core_test

import (
	"fmt"
	"testing"

	"lineup/internal/bench"
	"lineup/internal/core"
	"lineup/internal/history"
	"lineup/internal/sched"
)

// TestFig3CounterSpecSynthesis checks that phase 1, run on the correct
// counter, synthesizes exactly the behavior of the paper's Fig. 3
// specification automaton: get returns the number of completed increments
// minus decrements before it, dec blocks exactly at count zero (the
// semaphore-like missing transition), and the synthesized set is
// deterministic.
func TestFig3CounterSpecSynthesis(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := counterSubject()
	inc, get, dec := counterOps()

	// Test: A = inc; get, B = dec.
	m := &core.Test{Rows: [][]core.Op{{inc, get}, {dec}}}
	spec, stats, err := core.SynthesizeSpec(sub, m, core.Options{})
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	if w, bad := spec.Nondeterministic(); bad {
		t.Fatalf("counter spec nondeterministic: %v", w)
	}
	if stats.Stuck == 0 {
		t.Fatalf("expected stuck serial histories (dec first blocks, per the Fig. 3 automaton)")
	}

	check := func(h *history.SerialHistory) {
		count := 0
		for _, op := range h.Ops {
			switch op.Name {
			case "Inc()":
				count++
			case "Dec()":
				if count == 0 {
					t.Fatalf("serial dec completed at count 0: %v", h)
				}
				count--
			case "Get()":
				if op.Result != fmt.Sprint(count) {
					t.Fatalf("get returned %s at automaton count %d: %v", op.Result, count, h)
				}
			}
		}
		if h.Pending != nil {
			if h.Pending.Name != "Dec()" {
				t.Fatalf("only dec may block, got pending %s", h.Pending.Name)
			}
			if count != 0 {
				t.Fatalf("dec blocked at count %d: %v", count, h)
			}
		}
	}
	seen := 0
	for _, sig := range spec.Groups() {
		full, stuck := spec.GroupHistories(sig)
		for _, h := range full {
			check(h)
			seen++
		}
		for _, h := range stuck {
			check(h)
			seen++
		}
	}
	if seen == 0 {
		t.Fatalf("no serial histories synthesized")
	}
}

// TestMinimalDimensions verifies the Table 2 "minimum dimension" column
// and the small-scope hypothesis of Section 5.2 ("most failures can be
// found with very small tests"): shrinking every directed root-cause test
// still fails, never grows, stays within 2 threads x 3 invocations, and is
// 1-minimal (a second shrink changes nothing). Interestingly, two of the
// paper's expository scenarios are not themselves minimal: Fig. 1's 2x2
// matrix reduces to three invocations (the victim's own Add plus the
// overlapping Add and TryTake), and the stack range-pop needs only one
// pre-pushed element.
func TestMinimalDimensions(t *testing.T) {
	sched.RequireNoLeaks(t)
	if testing.Short() {
		t.Skip("shrinking every cause is slow")
	}
	for _, c := range bench.CauseCases() {
		c := c
		t.Run(string(c.Cause), func(t *testing.T) {
			opts := core.Options{PreemptionBound: c.Bound}
			min, res, err := core.Shrink(c.Subject, c.Test, opts)
			if err != nil {
				t.Fatalf("shrink: %v", err)
			}
			if res.Verdict != core.Fail {
				t.Fatalf("shrunk test passes")
			}
			threads, ops := min.Dim()
			if threads > 2 || ops > 3 {
				t.Fatalf("cause %s needs a %dx%d test; small-scope hypothesis violated:\n%s",
					c.Cause, threads, ops, min)
			}
			if min.NumOps() > c.Test.NumOps() {
				t.Fatalf("shrink grew the test")
			}
			// 1-minimality: a second shrink is a fixed point.
			min2, _, err := core.Shrink(c.Subject, min, opts)
			if err != nil {
				t.Fatalf("second shrink: %v", err)
			}
			if min2.NumOps() != min.NumOps() || len(min2.Init) != len(min.Init) {
				t.Fatalf("shrink is not a fixed point: %d ops -> %d ops", min.NumOps(), min2.NumOps())
			}
		})
	}
}
