package core

import (
	"fmt"

	"lineup/internal/history"
	"lineup/internal/sched"
)

// FinalThread is the history thread index used for the teardown
// pseudo-thread that executes a test's final invocation sequence; it is
// always len(Rows).
func (m *Test) FinalThread() int { return len(m.Rows) }

// program builds the sched.Program for one test of one subject. The object
// holder is shared across executions of the same exploration; the setup
// thread overwrites it with a fresh object each time.
func program(sub *Subject, m *Test, holder *any) sched.Program {
	prog := sched.Program{
		Setup: func(t *sched.Thread) {
			*holder = sub.New(t)
			for _, op := range m.Init {
				op.Run(t, *holder)
			}
		},
	}
	for _, row := range m.Rows {
		row := row
		prog.Threads = append(prog.Threads, func(t *sched.Thread) {
			for _, op := range row {
				name := op.Name()
				t.OpStart(name)
				res := op.Run(t, *holder)
				t.OpEnd(name, res)
			}
		})
	}
	if len(m.Final) > 0 {
		prog.Teardown = func(t *sched.Thread) {
			for _, op := range m.Final {
				name := op.Name()
				t.OpStart(name)
				res := op.Run(t, *holder)
				t.OpEnd(name, res)
			}
		}
	}
	return prog
}

// toHistory converts an execution outcome into a history. Scheduler thread
// IDs are shifted down by one because the setup pseudo-thread always takes
// ID 0 and records no events; test thread i therefore appears as history
// thread i, and the teardown thread as FinalThread().
func toHistory(out *sched.Outcome) (*history.History, error) {
	h := &history.History{Stuck: out.Stuck}
	for _, e := range out.Events {
		if e.Thread == 0 {
			return nil, fmt.Errorf("core: unexpected history event from setup thread")
		}
		kind := history.Call
		if e.Kind == sched.EvReturn {
			kind = history.Return
		}
		h.Events = append(h.Events, history.Event{
			Thread: int(e.Thread) - 1,
			Kind:   kind,
			Op:     e.Op,
			Result: e.Result,
			Index:  e.OpIndex,
		})
	}
	if out.Stuck && len(h.Pending()) == 0 {
		return nil, fmt.Errorf("core: execution stuck outside any operation (constructor or init sequence blocked)")
	}
	return h, nil
}

// OutcomeHistory converts a scheduler execution outcome into a history. It
// is the exported form of the conversion phase 1 and phase 2 apply to every
// explored execution, for tests and tooling outside core.
func OutcomeHistory(out *sched.Outcome) (*history.History, error) {
	return toHistory(out)
}

// ExploreHistories enumerates the distinct concurrent histories that
// phase-2 exploration of sub on m emits (deduplicated, with relaxed results
// normalized) and calls visit for each one, without deciding witness
// existence. Returning false from visit stops the exploration. This exposes
// the observation side of phase 2 for crosscheck tests and external
// monitoring tools.
func ExploreHistories(sub *Subject, m *Test, opts Options, visit func(*history.History) bool) error {
	var holder any
	var err error
	seen := make(map[string]bool)
	relaxed := opts.relaxedSet()
	_, exploreErr := sched.Explore(sched.ExploreConfig{
		Config:          sched.Config{Granularity: opts.Granularity},
		PreemptionBound: opts.bound(),
		MaxExecutions:   opts.maxExecs(),
	}, program(sub, m, &holder), func(out *sched.Outcome) bool {
		h, herr := toHistory(out)
		if herr != nil {
			err = herr
			return false
		}
		normalizeRelaxed(h, relaxed)
		key := historyKey(h)
		if seen[key] {
			return true
		}
		seen[key] = true
		return visit(h)
	})
	if err != nil {
		return err
	}
	return exploreErr
}

// historyKey canonicalizes a history's event sequence for deduplication:
// phase 2 explores many schedules that produce identical call/return
// interleavings, which need to be checked only once.
func historyKey(h *history.History) string {
	buf := make([]byte, 0, len(h.Events)*12)
	for _, e := range h.Events {
		buf = append(buf, byte('0'+e.Thread))
		if e.Kind == history.Call {
			buf = append(buf, '[')
		} else {
			buf = append(buf, ']')
		}
		buf = append(buf, e.Op...)
		buf = append(buf, '=')
		buf = append(buf, e.Result...)
		buf = append(buf, ';')
	}
	if h.Stuck {
		buf = append(buf, '#')
	}
	return string(buf)
}
