package core

import (
	"fmt"

	"lineup/internal/history"
	"lineup/internal/sched"
)

// FinalThread is the history thread index used for the teardown
// pseudo-thread that executes a test's final invocation sequence; it is
// always len(Rows).
func (m *Test) FinalThread() int { return len(m.Rows) }

// program builds the sched.Program for one test of one subject. The object
// holder is shared across executions of the same exploration; the setup
// thread overwrites it with a fresh object each time.
func program(sub *Subject, m *Test, holder *any) sched.Program {
	prog := sched.Program{
		Setup: func(t *sched.Thread) {
			*holder = sub.New(t)
			for _, op := range m.Init {
				op.Run(t, *holder)
			}
		},
	}
	for _, row := range m.Rows {
		row := row
		names := opNames(row)
		prog.Threads = append(prog.Threads, func(t *sched.Thread) {
			for i, op := range row {
				t.OpStart(names[i])
				res := op.Run(t, *holder)
				t.OpEnd(names[i], res)
			}
		})
	}
	if len(m.Final) > 0 {
		names := opNames(m.Final)
		prog.Teardown = func(t *sched.Thread) {
			for i, op := range m.Final {
				t.OpStart(names[i])
				res := op.Run(t, *holder)
				t.OpEnd(names[i], res)
			}
		}
	}
	return prog
}

// opNames resolves the display names of a row once per exploration. Name()
// formats the operation (fmt.Sprintf for parameterized ops), which is pure
// per-op work an exploration would otherwise repeat on every one of its
// thousands of executions.
func opNames(row []Op) []string {
	names := make([]string, len(row))
	for i, op := range row {
		names[i] = op.Name()
	}
	return names
}

// toHistory converts an execution outcome into a history. Scheduler thread
// IDs are shifted down by one because the setup pseudo-thread always takes
// ID 0 and records no events; test thread i therefore appears as history
// thread i, and the teardown thread as FinalThread().
func toHistory(out *sched.Outcome) (*history.History, error) {
	h := &history.History{Stuck: out.Stuck}
	for _, e := range out.Events {
		if e.Thread == 0 {
			return nil, fmt.Errorf("core: unexpected history event from setup thread")
		}
		kind := history.Call
		if e.Kind == sched.EvReturn {
			kind = history.Return
		}
		h.Events = append(h.Events, history.Event{
			Thread: int(e.Thread) - 1,
			Kind:   kind,
			Op:     e.Op,
			Result: e.Result,
			Index:  e.OpIndex,
		})
	}
	if out.Stuck && len(h.Pending()) == 0 {
		return nil, fmt.Errorf("core: execution stuck outside any operation (constructor or init sequence blocked)")
	}
	return h, nil
}

// OutcomeHistory converts a scheduler execution outcome into a history. It
// is the exported form of the conversion phase 1 and phase 2 apply to every
// explored execution, for tests and tooling outside core.
func OutcomeHistory(out *sched.Outcome) (*history.History, error) {
	return toHistory(out)
}

// ExploreHistories enumerates the distinct concurrent histories that
// phase-2 exploration of sub on m emits (deduplicated, with relaxed results
// normalized) and calls visit for each one, without deciding witness
// existence. Returning false from visit stops the exploration. This exposes
// the observation side of phase 2 for crosscheck tests and external
// monitoring tools.
func ExploreHistories(sub *Subject, m *Test, opts Options, visit func(*history.History) bool) error {
	var holder any
	var err error
	cache := newHistCache()
	relaxed := opts.relaxedSet()
	_, exploreErr := sched.Explore(sched.ExploreConfig{
		Config:          sched.Config{Granularity: opts.Granularity},
		PreemptionBound: opts.bound(),
		MaxExecutions:   opts.maxExecs(),
		Reduction:       opts.Reduction,
	}, program(sub, m, &holder), func(out *sched.Outcome) bool {
		_, isNew, herr := cache.lookup(out, relaxed)
		if herr != nil {
			err = herr
			return false
		}
		if !isNew {
			return true
		}
		h, herr := toHistory(out)
		if herr != nil {
			err = herr
			return false
		}
		normalizeRelaxed(h, relaxed)
		return visit(h)
	})
	if err != nil {
		return err
	}
	return exploreErr
}

// historyKey canonicalizes a history's event sequence for deduplication:
// phase 2 explores many schedules that produce identical call/return
// interleavings, which need to be checked only once.
func historyKey(h *history.History) string {
	buf := make([]byte, 0, len(h.Events)*12)
	for _, e := range h.Events {
		buf = append(buf, byte('0'+e.Thread))
		if e.Kind == history.Call {
			buf = append(buf, '[')
		} else {
			buf = append(buf, ']')
		}
		buf = append(buf, e.Op...)
		buf = append(buf, '=')
		buf = append(buf, e.Result...)
		buf = append(buf, ';')
	}
	if h.Stuck {
		buf = append(buf, '#')
	}
	return string(buf)
}
