package core

// RefOptions configures CheckAgainstModel.
type RefOptions struct {
	Options
	// ClassicOnly skips the stuck-history check, i.e. it applies the
	// original Definition 1 instead of the generalized Definition 3. It
	// exists to demonstrate the paper's Section 2.2.2: the classic
	// definition cannot detect erroneous blocking (Counter2's leaked lock),
	// while the generalized definition can.
	ClassicOnly bool
}

// CheckAgainstModel is a variant of Check that synthesizes the
// specification from a reference model rather than from the implementation
// itself: phase 1 enumerates the serial executions of model, phase 2 the
// concurrent executions of impl. This checks classic/generalized
// linearizability of impl with respect to the model's (deterministic)
// specification — the setting of the paper's Section 2.2 examples, where
// the counter specification of Fig. 3 is given. The model must be
// deterministic; if its serial behaviors are nondeterministic the check
// fails with a Nondeterminism violation attributed to the model.
func CheckAgainstModel(impl, model *Subject, m *Test, opts RefOptions) (*Result, error) {
	spec, p1, err := SynthesizeSpec(model, m, opts.Options)
	if err != nil {
		return nil, err
	}
	mode := modeGeneralized
	if opts.ClassicOnly {
		mode = modeClassic
	}
	res, err := phase2(impl, m, spec, opts.Options, mode)
	if err != nil {
		return nil, err
	}
	res.Phase1 = p1
	return res, nil
}
