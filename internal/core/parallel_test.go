package core_test

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"lineup/internal/collections"
	"lineup/internal/core"
	"lineup/internal/sched"
)

// workerCounts is the equivalence grid of the issue: Workers=1 takes the
// sequential explorer, the rest shard the phase-2 schedule space.
var workerCounts = []int{1, 2, 4, 8}

func queueSubject() *core.Subject {
	sub := &core.Subject{
		Name: "Queue",
		New:  func(th *sched.Thread) any { return collections.NewQueue(th) },
	}
	enq := core.Op{Method: "Enqueue", Args: "1", Run: func(th *sched.Thread, o any) string {
		o.(*collections.Queue).Enqueue(th, 1)
		return collections.OK
	}}
	deq := core.Op{Method: "TryDequeue", Run: func(th *sched.Thread, o any) string {
		return collections.TryInt(o.(*collections.Queue).TryDequeue(th))
	}}
	sub.Ops = []core.Op{enq, deq}
	return sub
}

func stackSubject() *core.Subject {
	sub := &core.Subject{
		Name: "Stack",
		New:  func(th *sched.Thread) any { return collections.NewStack(th) },
	}
	push := core.Op{Method: "Push", Args: "1", Run: func(th *sched.Thread, o any) string {
		o.(*collections.Stack).Push(th, 1)
		return collections.OK
	}}
	pop := core.Op{Method: "TryPop", Run: func(th *sched.Thread, o any) string {
		v, ok := o.(*collections.Stack).TryPop(th)
		if !ok {
			return collections.Bool(false)
		}
		return collections.Int(v)
	}}
	sub.Ops = []core.Op{push, pop}
	return sub
}

// violationString renders a violation for comparison; the empty string means
// no violation.
func violationString(r *core.Result) string {
	if r.Violation == nil {
		return ""
	}
	return r.Violation.String()
}

// TestCheckWorkersEquivalence is the issue's acceptance gate: Check with
// Options.Workers=N must return an identical verdict and a deterministic,
// identical violation to Workers=1 on every subject of the corpus — correct
// queue/stack/counter subjects (including a blocking test with stuck
// histories) and buggy variants.
func TestCheckWorkersEquivalence(t *testing.T) {
	sched.RequireNoLeaks(t)
	inc, get, dec := counterOps()
	qsub := queueSubject()
	ssub := stackSubject()
	rsub := racyRegister()
	lsub := lazyPreSubject()
	cases := []struct {
		name string
		sub  *core.Subject
		m    *core.Test
	}{
		{"queue-2x2", qsub, &core.Test{Rows: [][]core.Op{{qsub.Ops[0], qsub.Ops[1]}, {qsub.Ops[0], qsub.Ops[1]}}}},
		{"stack-2x2", ssub, &core.Test{Rows: [][]core.Op{{ssub.Ops[0], ssub.Ops[1]}, {ssub.Ops[1], ssub.Ops[0]}}}},
		{"counter-pass", counterSubject(), &core.Test{Rows: [][]core.Op{{inc, get}, {inc, get}}}},
		{"counter-blocking", counterSubject(), &core.Test{Rows: [][]core.Op{{dec}, {inc, dec}}}},
		{"racy-register", rsub, &core.Test{Rows: [][]core.Op{{rsub.Ops[0], rsub.Ops[1]}, {rsub.Ops[0]}}}},
		{"lazy-pre", lsub, &core.Test{Rows: [][]core.Op{{lsub.Ops[0]}, {lsub.Ops[0], lsub.Ops[1]}}}},
	}
	for _, tc := range cases {
		base := mustCheck(t, tc.sub, tc.m, core.Options{Workers: 1})
		for _, w := range workerCounts[1:] {
			got := mustCheck(t, tc.sub, tc.m, core.Options{Workers: w})
			if got.Verdict != base.Verdict {
				t.Fatalf("%s workers=%d: verdict %v, sequential %v", tc.name, w, got.Verdict, base.Verdict)
			}
			if violationString(got) != violationString(base) {
				t.Fatalf("%s workers=%d: violation differs from sequential:\n got: %s\nwant: %s",
					tc.name, w, violationString(got), violationString(base))
			}
			if base.Verdict == core.Pass {
				// A passing run explores the whole space: the merged phase-2
				// statistics must be bit-identical to the sequential ones.
				if got.Phase2.Executions != base.Phase2.Executions ||
					got.Phase2.Decisions != base.Phase2.Decisions ||
					got.Phase2.Histories != base.Phase2.Histories ||
					got.Phase2.Stuck != base.Phase2.Stuck {
					t.Fatalf("%s workers=%d: phase-2 stats differ: got %+v want %+v",
						tc.name, w, got.Phase2, base.Phase2)
				}
			}
		}
	}
}

// TestCheckWorkersEquivalenceAcrossBounds runs the verdict-equivalence grid
// over preemption bounds 0/1/2/Unbounded on one passing and one failing
// subject, both with cheap schedule spaces.
func TestCheckWorkersEquivalenceAcrossBounds(t *testing.T) {
	sched.RequireNoLeaks(t)
	rsub := racyRegister()
	qsub := queueSubject()
	cases := []struct {
		name string
		sub  *core.Subject
		m    *core.Test
	}{
		{"queue", qsub, &core.Test{Rows: [][]core.Op{{qsub.Ops[0], qsub.Ops[1]}, {qsub.Ops[0]}}}},
		{"racy-register", rsub, &core.Test{Rows: [][]core.Op{{rsub.Ops[0]}, {rsub.Ops[0], rsub.Ops[1]}}}},
	}
	for _, tc := range cases {
		for _, bound := range []int{core.NoPreemptions, 1, 2, core.Unbounded} {
			base := mustCheck(t, tc.sub, tc.m, core.Options{PreemptionBound: bound, Workers: 1})
			for _, w := range workerCounts[1:] {
				got := mustCheck(t, tc.sub, tc.m, core.Options{PreemptionBound: bound, Workers: w})
				if got.Verdict != base.Verdict || violationString(got) != violationString(base) {
					t.Fatalf("%s bound=%d workers=%d: result differs from sequential (verdict %v vs %v)",
						tc.name, bound, w, got.Verdict, base.Verdict)
				}
			}
		}
	}
}

// TestCheckWorkersExhaustStats checks the exhaustive mode: with
// ExhaustPhase2 the whole space is explored even on failing subjects, so the
// parallel statistics — not just the verdict — must equal the sequential
// ones.
func TestCheckWorkersExhaustStats(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := racyRegister()
	m := &core.Test{Rows: [][]core.Op{{sub.Ops[0], sub.Ops[1]}, {sub.Ops[0]}}}
	base := mustCheck(t, sub, m, core.Options{ExhaustPhase2: true, Workers: 1})
	if base.Verdict != core.Fail {
		t.Fatalf("racy register unexpectedly passed")
	}
	for _, w := range workerCounts[1:] {
		got := mustCheck(t, sub, m, core.Options{ExhaustPhase2: true, Workers: w})
		if got.Verdict != base.Verdict || violationString(got) != violationString(base) {
			t.Fatalf("workers=%d: exhaustive verdict/violation differs from sequential", w)
		}
		if got.Phase2.Executions != base.Phase2.Executions ||
			got.Phase2.Decisions != base.Phase2.Decisions ||
			got.Phase2.Histories != base.Phase2.Histories ||
			got.Phase2.Stuck != base.Phase2.Stuck {
			t.Fatalf("workers=%d: exhaustive phase-2 stats differ: got %+v want %+v", w, got.Phase2, base.Phase2)
		}
	}
}

// TestForEachExecutionWorkers checks the execution-stream hook: with
// Workers > 1 the multiset of outcomes handed to visit is the sequential
// multiset, and the merged stats match.
func TestForEachExecutionWorkers(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := queueSubject()
	m := &core.Test{Rows: [][]core.Op{{sub.Ops[0], sub.Ops[1]}, {sub.Ops[0]}}}
	collect := func(workers int) (map[string]int, sched.ExploreStats) {
		ms := map[string]int{}
		var mu sync.Mutex
		stats, err := core.ForEachExecution(sub, m, core.Options{Workers: workers}, false, func(out *sched.Outcome) bool {
			mu.Lock()
			h, herr := core.OutcomeHistory(out)
			if herr != nil {
				t.Errorf("history: %v", herr)
			} else {
				ms[h.String()]++
			}
			mu.Unlock()
			return true
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return ms, stats
	}
	baseMS, baseStats := collect(1)
	for _, w := range workerCounts[1:] {
		gotMS, gotStats := collect(w)
		if gotStats.Executions != baseStats.Executions || gotStats.Decisions != baseStats.Decisions {
			t.Fatalf("workers=%d: stats differ: got %+v want %+v", w, gotStats, baseStats)
		}
		if len(gotMS) != len(baseMS) {
			t.Fatalf("workers=%d: %d distinct histories, sequential %d", w, len(gotMS), len(baseMS))
		}
		for k, n := range baseMS {
			if gotMS[k] != n {
				t.Fatalf("workers=%d: history multiset differs at one key (%d vs %d occurrences)", w, gotMS[k], n)
			}
		}
	}
}

// TestCheckWorkersPropertyRandomTests is the randomized layer of the
// equivalence suite: random test matrices on a buggy subject, random worker
// counts — the verdict and the violation report must match the sequential
// check every time.
func TestCheckWorkersPropertyRandomTests(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := racyRegister()
	prop := func(seed int64, wpick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomTest(rng, sub.Ops, 2, 2)
		w := workerCounts[1:][int(wpick)%len(workerCounts[1:])]
		base, err := core.Check(sub, m, core.Options{Workers: 1})
		if err != nil {
			t.Fatalf("sequential check: %v", err)
		}
		got, err := core.Check(sub, m, core.Options{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d check: %v", w, err)
		}
		return got.Verdict == base.Verdict && violationString(got) == violationString(base)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestAutoCheckWorkers smoke-checks the AutoCheck wiring: the bounded
// enumeration with parallel phase-2 exploration stops at the same test with
// the same violation as the sequential run.
func TestAutoCheckWorkers(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := racyRegister()
	mk := func(workers int) core.AutoOptions {
		opts := core.AutoOptions{MaxN: 2, MaxTests: 20}
		opts.Workers = workers
		return opts
	}
	base, err := core.AutoCheck(sub, mk(1))
	if err != nil {
		t.Fatalf("sequential autocheck: %v", err)
	}
	got, err := core.AutoCheck(sub, mk(4))
	if err != nil {
		t.Fatalf("parallel autocheck: %v", err)
	}
	if got.Tests != base.Tests || got.Exhausted != base.Exhausted {
		t.Fatalf("autocheck disagrees: sequential tests=%d exhausted=%v, parallel tests=%d exhausted=%v",
			base.Tests, base.Exhausted, got.Tests, got.Exhausted)
	}
	if (got.Failed == nil) != (base.Failed == nil) {
		t.Fatalf("autocheck failure presence disagrees")
	}
	if got.Failed != nil && violationString(got.Failed) != violationString(base.Failed) {
		t.Fatalf("autocheck violation differs:\n got: %s\nwant: %s",
			violationString(got.Failed), violationString(base.Failed))
	}
}

// TestCheckShardProgress checks that Options.ShardProgress receives a
// coherent stream of snapshots during a parallel check.
func TestCheckShardProgress(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := queueSubject()
	m := &core.Test{Rows: [][]core.Op{{sub.Ops[0], sub.Ops[1]}, {sub.Ops[0]}}}
	var mu sync.Mutex
	var last sched.ShardProgress
	snaps := 0
	res, err := core.Check(sub, m, core.Options{Workers: 4, ShardProgress: func(p sched.ShardProgress) {
		mu.Lock()
		defer mu.Unlock()
		if p.Shards < last.Shards || p.Done < last.Done || p.Executions < last.Executions {
			t.Errorf("shard progress went backwards: %+v after %+v", p, last)
		}
		last = p
		snaps++
	}})
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if res.Verdict != core.Pass {
		t.Fatalf("queue failed: %v", res.Violation)
	}
	if snaps == 0 {
		t.Fatalf("no shard progress reported")
	}
	if last.Done != last.Shards {
		t.Fatalf("final shard progress has %d done of %d shards", last.Done, last.Shards)
	}
}
