package core_test

import (
	"testing"

	"lineup/internal/core"
	"lineup/internal/sched"
)

// TestFinalSequenceObservesLostUpdate: the final invocation sequence
// (Section 4.3) runs after all test threads and its results are part of the
// history — a final Get observes Counter1's lost update even when the test
// threads perform no reads themselves.
func TestFinalSequenceObservesLostUpdate(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := counter1Subject()
	inc := sub.Ops[0]
	get := sub.Ops[1]
	m := &core.Test{
		Rows:  [][]core.Op{{inc}, {inc}},
		Final: []core.Op{get},
	}
	res := mustCheck(t, sub, m, core.Options{})
	if res.Verdict != core.Fail {
		t.Fatalf("final Get did not expose the lost update")
	}
	// The violating history's final thread index is len(Rows).
	found := false
	for _, op := range res.Violation.History.Ops() {
		if op.Thread == m.FinalThread() && op.Name == "Get()" {
			found = true
		}
	}
	if !found {
		t.Fatalf("final Get missing from the violating history")
	}
}

// TestInitSequencePreparesState: the init sequence runs unobserved before
// the test threads; a counter pre-incremented via init lets a bare Get
// return 1 in every witness.
func TestInitSequencePreparesState(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := counterSubject()
	inc, get, dec := counterOps()
	_ = dec
	m := &core.Test{
		Init: []core.Op{inc},
		Rows: [][]core.Op{{get}, {inc}},
	}
	res := mustCheck(t, sub, m, core.Options{KeepSpec: true})
	if res.Verdict != core.Pass {
		t.Fatalf("init-prepared counter failed: %v", res.Violation)
	}
	// Every serial history's Get must return 1 or 2 (never 0).
	for _, sig := range res.Spec.Groups() {
		full, _ := res.Spec.GroupHistories(sig)
		for _, h := range full {
			for _, op := range h.Ops {
				if op.Name == "Get()" && op.Result == "0" {
					t.Fatalf("init increment not applied: %v", h)
				}
			}
		}
	}
}

// TestInitSequenceUnblocksDec: a dec that would deadlock on a fresh counter
// is fine after an init increment (no stuck histories at all).
func TestInitSequenceUnblocksDec(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := counterSubject()
	inc, _, dec := counterOps()
	m := &core.Test{
		Init: []core.Op{inc},
		Rows: [][]core.Op{{dec}},
	}
	res := mustCheck(t, sub, m, core.Options{})
	if res.Verdict != core.Pass {
		t.Fatalf("failed: %v", res.Violation)
	}
	if res.Phase1.Stuck != 0 || res.Phase2.Stuck != 0 {
		t.Fatalf("unexpected stuck histories: %d/%d", res.Phase1.Stuck, res.Phase2.Stuck)
	}
}

// TestGranularityAffectsScheduleCount: sync-only granularity explores
// strictly fewer schedules than all-access granularity on a subject with
// plain-field accesses.
func TestGranularityAffectsScheduleCount(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := counterSubject() // counter fields are plain cells under a lock
	inc, get, _ := counterOps()
	m := &core.Test{Rows: [][]core.Op{{inc}, {get}}}
	count := func(g sched.Granularity) int {
		n := 0
		_, err := core.ForEachExecution(sub, m, core.Options{PreemptionBound: 2, Granularity: g}, false,
			func(out *sched.Outcome) bool { n++; return true })
		if err != nil {
			t.Fatalf("explore: %v", err)
		}
		return n
	}
	all := count(sched.GranAll)
	syncOnly := count(sched.GranSync)
	if syncOnly >= all {
		t.Fatalf("sync-only (%d) should explore fewer schedules than all-access (%d)", syncOnly, all)
	}
}

// TestAutoCheckEnumerationCount: AutoCheck visits exactly 1 test at n=1 and
// 16 at n=2 for a two-invocation universe (|I_n|^(n*n)).
func TestAutoCheckEnumerationCount(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := counterSubject()
	sub.Ops = sub.Ops[:2]
	res, err := core.AutoCheck(sub, core.AutoOptions{MaxN: 2, MaxTests: 1000})
	if err != nil {
		t.Fatalf("autocheck: %v", err)
	}
	if res.Failed != nil {
		t.Fatalf("correct counter flagged: %v", res.Failed.Violation)
	}
	if res.Tests != 1+16 {
		t.Fatalf("tests = %d, want 17", res.Tests)
	}
}
