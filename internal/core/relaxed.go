package core

import "lineup/internal/history"

// RelaxedResult is the wildcard that replaces the results of relaxed
// operations in histories and specifications.
const RelaxedResult = "*"

// Relax marks the named operations (display names, e.g. "Count()") as
// nondeterministic: their results are replaced by a wildcard before
// specification synthesis and witness checking, so differing results never
// cause a failure while the operations' ordering and blocking behavior are
// still checked. This implements the paper's future-work item of Section 6
// ("incorporate support for nondeterministic methods, such as methods that
// may fail on interference"): after the developers of ConcurrentBag and
// BlockingCollection documented the weak semantics of Count/TryTake
// (Section 5.2.2), a user would relax exactly those methods and keep
// checking the rest of the class.
func (o Options) Relax(names ...string) Options {
	relaxed := make(map[string]bool, len(o.RelaxedOps)+len(names))
	out := o
	out.RelaxedOps = append(append([]string(nil), o.RelaxedOps...), names...)
	for _, n := range out.RelaxedOps {
		relaxed[n] = true
	}
	return out
}

// relaxedSet builds the lookup set from the options.
func (o Options) relaxedSet() map[string]bool {
	if len(o.RelaxedOps) == 0 {
		return nil
	}
	m := make(map[string]bool, len(o.RelaxedOps))
	for _, n := range o.RelaxedOps {
		m[n] = true
	}
	return m
}

// normalizeRelaxed rewrites the results of relaxed operations to the
// wildcard. It must be applied to every history before it reaches the
// specification or a witness check, in both phases, so that spec and
// history signatures agree.
func normalizeRelaxed(h *history.History, relaxed map[string]bool) {
	if len(relaxed) == 0 {
		return
	}
	for i := range h.Events {
		e := &h.Events[i]
		if e.Kind == history.Return && relaxed[e.Op] {
			e.Result = RelaxedResult
		}
	}
}
