package core

import (
	"fmt"

	"lineup/internal/history"
)

// Consistency selects the correctness criterion phase 2 checks complete
// histories against. Linearizability is the paper's default; the two relaxed
// criteria weaken only the ordering constraints of the witness search —
// results must still match some serial execution, and stuck histories are
// always checked strictly (blocking behavior is a liveness property that
// neither criterion relaxes). Both relaxed criteria are weaker than
// linearizability: every history with a linearizability witness also has a
// witness under either of them, never the converse.
type Consistency int

const (
	// Linearizability is the strict criterion of Definition 1/3: the witness
	// must respect all real-time precedence (<H ⊆ <S).
	Linearizability Consistency = iota
	// SequentialConsistency keeps only program order: the witness must have
	// the same per-thread subhistories but may reorder operations of
	// different threads arbitrarily, even against real time.
	SequentialConsistency
	// QuiescentConsistency keeps real-time order only across quiescent
	// points (instants with no operation pending): operations separated by a
	// quiescent point stay ordered, operations within one quiescence block
	// may be reordered freely.
	QuiescentConsistency
)

func (c Consistency) String() string {
	switch c {
	case Linearizability:
		return "linearizable"
	case SequentialConsistency:
		return "sequential"
	case QuiescentConsistency:
		return "quiescent"
	default:
		return fmt.Sprintf("Consistency(%d)", int(c))
	}
}

// ParseConsistency parses a -consistency flag value.
func ParseConsistency(s string) (Consistency, error) {
	switch s {
	case "", "linearizable", "linearizability", "strict":
		return Linearizability, nil
	case "sequential", "sc":
		return SequentialConsistency, nil
	case "quiescent", "qc":
		return QuiescentConsistency, nil
	default:
		return 0, fmt.Errorf("core: unknown consistency %q (want linearizable, sequential, or quiescent)", s)
	}
}

// RelaxedResult is the wildcard that replaces the results of relaxed
// operations in histories and specifications.
const RelaxedResult = "*"

// Relax marks the named operations (display names, e.g. "Count()") as
// nondeterministic: their results are replaced by a wildcard before
// specification synthesis and witness checking, so differing results never
// cause a failure while the operations' ordering and blocking behavior are
// still checked. This implements the paper's future-work item of Section 6
// ("incorporate support for nondeterministic methods, such as methods that
// may fail on interference"): after the developers of ConcurrentBag and
// BlockingCollection documented the weak semantics of Count/TryTake
// (Section 5.2.2), a user would relax exactly those methods and keep
// checking the rest of the class.
func (o Options) Relax(names ...string) Options {
	relaxed := make(map[string]bool, len(o.RelaxedOps)+len(names))
	out := o
	out.RelaxedOps = append(append([]string(nil), o.RelaxedOps...), names...)
	for _, n := range out.RelaxedOps {
		relaxed[n] = true
	}
	return out
}

// relaxedSet builds the lookup set from the options.
func (o Options) relaxedSet() map[string]bool {
	if len(o.RelaxedOps) == 0 {
		return nil
	}
	m := make(map[string]bool, len(o.RelaxedOps))
	for _, n := range o.RelaxedOps {
		m[n] = true
	}
	return m
}

// normalizeRelaxed rewrites the results of relaxed operations to the
// wildcard. It must be applied to every history before it reaches the
// specification or a witness check, in both phases, so that spec and
// history signatures agree.
func normalizeRelaxed(h *history.History, relaxed map[string]bool) {
	if len(relaxed) == 0 {
		return
	}
	for i := range h.Events {
		e := &h.Events[i]
		if e.Kind == history.Return && relaxed[e.Op] {
			e.Result = RelaxedResult
		}
	}
}
