package core_test

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"lineup/internal/bench"
	"lineup/internal/core"
	"lineup/internal/sched"
)

// reductionSubjects is a cheap-to-explore cross-section of the Table-1
// registry (correct and (Pre) variants over internal/collections and
// internal/buggy, including the wait-set classes) plus the racy register.
func reductionSubjects() []*core.Subject {
	var subs []*core.Subject
	want := map[string]bool{
		"Lazy": true, "Lazy(Pre)": true,
		"ManualResetEvent": true, "ManualResetEvent(Pre)": true,
		"CountdownEvent": true, "CountdownEvent(Pre)": true,
		"TaskCompletionSource(Pre)": true,
	}
	for _, e := range bench.Registry() {
		if want[e.Subject.Name] {
			subs = append(subs, e.Subject)
		}
		if e.Pre != nil && want[e.Pre.Name] {
			subs = append(subs, e.Pre)
		}
	}
	return append(subs, racyRegister())
}

// checkReductionEquivalent runs Check on (sub, m) under every combination of
// {sequential, parallel} x {ReductionNone, ReductionSleep} and asserts the
// reduction-preservation contract: bit-identical verdict and first violation,
// identical distinct-history counts, and (sequentially) no more schedules
// explored with reduction than without. It returns the sequential pruned
// count so callers can check the reduction actually fires somewhere.
func checkReductionEquivalent(t *testing.T, sub *core.Subject, m *core.Test, base core.Options) int {
	t.Helper()
	run := func(workers int, red sched.Reduction) *core.Result {
		opts := base
		opts.Workers = workers
		opts.Reduction = red
		r, err := core.Check(sub, m, opts)
		if err != nil {
			t.Fatalf("%s workers=%d reduction=%s: %v", sub.Name, workers, red, err)
		}
		return r
	}
	full := run(1, sched.ReductionNone)
	reduced := run(1, sched.ReductionSleep)
	if full.Verdict != reduced.Verdict {
		t.Fatalf("%s: verdict differs: full=%s reduced=%s", sub.Name, full.Verdict, reduced.Verdict)
	}
	if fv, rv := violationString(full), violationString(reduced); fv != rv {
		t.Fatalf("%s: first violation differs under reduction:\nfull:\n%s\nreduced:\n%s", sub.Name, fv, rv)
	}
	if full.Phase2.Histories != reduced.Phase2.Histories || full.Phase2.Stuck != reduced.Phase2.Stuck {
		t.Fatalf("%s: distinct histories differ: full=%d/%d stuck, reduced=%d/%d stuck",
			sub.Name, full.Phase2.Histories, full.Phase2.Stuck, reduced.Phase2.Histories, reduced.Phase2.Stuck)
	}
	if reduced.Phase2.Executions > full.Phase2.Executions {
		t.Fatalf("%s: reduction explored more schedules (%d) than full search (%d)",
			sub.Name, reduced.Phase2.Executions, full.Phase2.Executions)
	}
	for _, red := range []sched.Reduction{sched.ReductionNone, sched.ReductionSleep} {
		par := run(4, red)
		if par.Verdict != full.Verdict {
			t.Fatalf("%s workers=4 reduction=%s: verdict %s, sequential %s", sub.Name, red, par.Verdict, full.Verdict)
		}
		if pv, fv := violationString(par), violationString(full); pv != fv {
			t.Fatalf("%s workers=4 reduction=%s: violation differs from sequential:\nparallel:\n%s\nsequential:\n%s",
				sub.Name, red, pv, fv)
		}
		if par.Phase2.Histories != full.Phase2.Histories || par.Phase2.Stuck != full.Phase2.Stuck {
			// History counts are exact for any worker count on passing or
			// exhaustive runs; on early-stopped failing runs in-flight
			// parallel work may visit extra executions, which can only add
			// histories, never lose them.
			if full.Verdict == core.Pass || base.ExhaustPhase2 || par.Phase2.Histories < full.Phase2.Histories {
				t.Fatalf("%s workers=4 reduction=%s: histories %d/%d stuck, sequential %d/%d stuck",
					sub.Name, red, par.Phase2.Histories, par.Phase2.Stuck, full.Phase2.Histories, full.Phase2.Stuck)
			}
		}
	}
	return reduced.Phase2.Pruned
}

// TestReductionEquivalence is the property suite of the reduction contract:
// random small tests over the registry subjects, checked under sequential and
// parallel exploration with reduction off and on, must agree on everything
// observable (verdict, first violation, distinct histories) while sleep-set
// reduction never explores more schedules. Run under -race by check-race.
func TestReductionEquivalence(t *testing.T) {
	sched.RequireNoLeaks(t)
	subs := reductionSubjects()
	totalPruned := 0
	prop := func(seed int64, exhaust bool) bool {
		rng := rand.New(rand.NewSource(seed))
		sub := subs[rng.Intn(len(subs))]
		m := randomTest(rng, sub.Ops, 2, 2)
		base := core.Options{ExhaustPhase2: exhaust}
		totalPruned += checkReductionEquivalent(t, sub, m, base)
		return true
	}
	n := 30
	if testing.Short() {
		n = 8
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
	if totalPruned == 0 {
		t.Fatalf("sleep-set reduction pruned nothing across the whole property run")
	}
}

// TestReductionEquivalenceUnbounded repeats the contract without preemption
// bounding, where the classic (unrestricted) sleep sets are in effect.
// Unbounded full exploration of an unlucky random test can exceed any fixed
// execution budget (the schedule count is exponential in total steps), and a
// budget-truncated baseline proves nothing about the contract; such samples
// are probed first, cheaply, under a small explicit budget and skipped.
func TestReductionEquivalenceUnbounded(t *testing.T) {
	sched.RequireNoLeaks(t)
	subs := reductionSubjects()
	checked := 0
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sub := subs[rng.Intn(len(subs))]
		m := randomTest(rng, sub.Ops, 2, 2)
		base := core.Options{
			PreemptionBound:       core.Unbounded,
			ExhaustPhase2:         true,
			MaxExecutionsPerPhase: 20000,
		}
		if _, err := core.Check(sub, m, base); err != nil {
			if errors.Is(err, sched.ErrBudget) {
				return true // vacuous: no full baseline to compare against
			}
			t.Fatalf("%s: probe: %v", sub.Name, err)
		}
		checked++
		checkReductionEquivalent(t, sub, m, base)
		return true
	}
	n := 15
	if testing.Short() {
		n = 5
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Skip("every sampled test exceeded the unbounded execution budget")
	}
}

// TestReductionAutoCheckEquivalent: the bounded AutoCheck loop reaches the
// same failing test after the same number of checks whether or not the
// per-test explorations are reduced.
func TestReductionAutoCheckEquivalent(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := lazyPreSubject()
	run := func(red sched.Reduction) *core.AutoResult {
		res, err := core.AutoCheck(sub, core.AutoOptions{
			Options:  core.Options{Reduction: red},
			MaxN:     2,
			MaxTests: 40,
		})
		if err != nil {
			t.Fatalf("autocheck reduction=%s: %v", red, err)
		}
		return res
	}
	full := run(sched.ReductionNone)
	reduced := run(sched.ReductionSleep)
	if full.Tests != reduced.Tests || (full.Failed == nil) != (reduced.Failed == nil) {
		t.Fatalf("autocheck diverged: full=%d tests (failed=%v), reduced=%d tests (failed=%v)",
			full.Tests, full.Failed != nil, reduced.Tests, reduced.Failed != nil)
	}
	if full.Failed != nil {
		if fv, rv := violationString(full.Failed), violationString(reduced.Failed); fv != rv {
			t.Fatalf("autocheck first violation differs:\nfull:\n%s\nreduced:\n%s", fv, rv)
		}
	}
}
