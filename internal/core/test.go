// Package core implements the Line-Up algorithm of the paper: finite tests
// (invocation matrices, Section 3.1), the two-phase Check of Fig. 5, the
// AutoCheck enumeration of Fig. 6, the RandomCheck sampling of Fig. 8, and
// automatic shrinking of failing tests (automating the manual minimization
// of Section 5.1).
package core

import (
	"fmt"
	"strings"

	"lineup/internal/sched"
)

// Op is one invocation of the object under test: a method name with
// rendered arguments, and a closure that performs the call on a concrete
// object and returns the canonical result string. Blocking invocations
// simply do not return until unblocked; the checker observes the pending
// call. Void results are rendered "ok", boolean results "true"/"false",
// and failed try-operations "Fail", following the paper's examples.
type Op struct {
	// Method is the method name, e.g. "Add".
	Method string
	// Args is the rendered argument list, e.g. "200" (may be empty).
	Args string
	// Run performs the invocation. obj is the object created by Subject.New.
	Run func(t *sched.Thread, obj any) string
}

// Name returns the display name used in histories, e.g. "Add(200)".
func (op Op) Name() string {
	if op.Args == "" {
		return op.Method + "()"
	}
	return op.Method + "(" + op.Args + ")"
}

// Subject is an implementation under test: a constructor and a universe of
// representative invocations (the list I of Section 4.3 that random tests
// draw from).
type Subject struct {
	// Name identifies the class, e.g. "ConcurrentQueue" or
	// "ConcurrentQueue(Pre)".
	Name string
	// New constructs a fresh object; it runs single-threaded inside the
	// setup pseudo-thread of every execution.
	New func(t *sched.Thread) any
	// Ops is the representative invocation universe.
	Ops []Op
	// SourceFiles lists the implementation source files (module-relative),
	// used by the Table 1 harness to count lines of code.
	SourceFiles []string
}

// FindOp returns the representative invocation with the given display name.
func (s *Subject) FindOp(name string) (Op, bool) {
	for _, op := range s.Ops {
		if op.Name() == name {
			return op, true
		}
	}
	return Op{}, false
}

// Test is a finite test (Section 3.1): a map from threads to invocation
// sequences, written as a matrix with one column per thread, plus optional
// initial and final invocation sequences (Section 4.3). Initial invocations
// run unobserved in the setup pseudo-thread (state preparation); final
// invocations run and are observed in a teardown pseudo-thread after all
// test threads have finished, which lets tests observe the final state.
type Test struct {
	Init  []Op
	Rows  [][]Op // Rows[i] is the invocation sequence of thread i
	Final []Op
}

// Dim returns the dimension of the test: number of threads and the length
// of the longest invocation sequence.
func (m *Test) Dim() (threads, ops int) {
	threads = len(m.Rows)
	for _, r := range m.Rows {
		if len(r) > ops {
			ops = len(r)
		}
	}
	return threads, ops
}

// NumOps returns the total number of invocations in the matrix (excluding
// init and final sequences).
func (m *Test) NumOps() int {
	n := 0
	for _, r := range m.Rows {
		n += len(r)
	}
	return n
}

// IsPrefixOf reports whether m is a prefix of m2 in the sense of Section
// 3.1: each thread's invocation sequence in m is a prefix of the matching
// sequence in m2 (missing rows count as empty), and the init and final
// sequences agree.
func (m *Test) IsPrefixOf(m2 *Test) bool {
	if len(m.Rows) > len(m2.Rows) {
		return false
	}
	if !sameOps(m.Init, m2.Init) || !sameOps(m.Final, m2.Final) {
		return false
	}
	for i, row := range m.Rows {
		if len(row) > len(m2.Rows[i]) {
			return false
		}
		for j, op := range row {
			if op.Name() != m2.Rows[i][j].Name() {
				return false
			}
		}
	}
	return true
}

func sameOps(a, b []Op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name() != b[i].Name() {
			return false
		}
	}
	return true
}

// String renders the test as a matrix, one thread per column, as in the
// paper's Fig. 7 (top).
func (m *Test) String() string {
	var b strings.Builder
	threads, depth := m.Dim()
	if len(m.Init) > 0 {
		names := make([]string, len(m.Init))
		for i, op := range m.Init {
			names[i] = op.Name()
		}
		fmt.Fprintf(&b, "init: %s\n", strings.Join(names, "; "))
	}
	for i := 0; i < threads; i++ {
		fmt.Fprintf(&b, "%-14s", "Thread "+threadLabel(i))
	}
	b.WriteByte('\n')
	for j := 0; j < depth; j++ {
		for i := 0; i < threads; i++ {
			cell := ""
			if j < len(m.Rows[i]) {
				cell = m.Rows[i][j].Name()
			}
			fmt.Fprintf(&b, "%-14s", cell)
		}
		b.WriteByte('\n')
	}
	if len(m.Final) > 0 {
		names := make([]string, len(m.Final))
		for i, op := range m.Final {
			names[i] = op.Name()
		}
		fmt.Fprintf(&b, "final: %s\n", strings.Join(names, "; "))
	}
	return b.String()
}

func threadLabel(i int) string {
	if i < 26 {
		return string(rune('A' + i))
	}
	return fmt.Sprintf("T%d", i)
}

// Clone returns a deep copy of the test's structure (ops are shared, which
// is safe because Op values are immutable).
func (m *Test) Clone() *Test {
	c := &Test{
		Init:  append([]Op(nil), m.Init...),
		Final: append([]Op(nil), m.Final...),
	}
	for _, r := range m.Rows {
		c.Rows = append(c.Rows, append([]Op(nil), r...))
	}
	return c
}
