package core_test

import (
	"testing"

	"lineup/internal/core"
	"lineup/internal/sched"
)

// TestSampledPhase2FindsBugs: random-walk and PCT schedule sampling find
// the Counter1 lost update without exhaustive exploration.
func TestSampledPhase2FindsBugs(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := counter1Subject()
	inc := sub.Ops[0]
	get := sub.Ops[1]
	m := &core.Test{Rows: [][]core.Op{{inc, get}, {inc}}}
	for _, strat := range []struct {
		name string
		s    sched.Strategy
	}{{"walk", sched.StrategyWalk}, {"pct", sched.StrategyPCT}} {
		strat := strat
		t.Run(strat.name, func(t *testing.T) {
			res, err := core.Check(sub, m, core.Options{
				SampleSchedules: 300,
				SampleStrategy:  strat.s,
				SampleSeed:      1,
			})
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			if res.Verdict != core.Fail {
				t.Fatalf("%s sampling missed the Counter1 bug in 300 schedules", strat.name)
			}
			if res.Phase2.Executions > 300 {
				t.Fatalf("sampling ran %d > 300 schedules", res.Phase2.Executions)
			}
		})
	}
}

// TestSampledPhase2NoFalseAlarms: sampling never flags the correct counter
// (violations remain proofs regardless of the search strategy).
func TestSampledPhase2NoFalseAlarms(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := counterSubject()
	inc, get, _ := counterOps()
	m := &core.Test{Rows: [][]core.Op{{inc, get}, {inc, get}}}
	for _, strat := range []sched.Strategy{sched.StrategyWalk, sched.StrategyPCT} {
		res, err := core.Check(sub, m, core.Options{
			SampleSchedules: 500,
			SampleStrategy:  strat,
			SampleSeed:      2,
		})
		if err != nil {
			t.Fatalf("check: %v", err)
		}
		if res.Verdict != core.Pass {
			t.Fatalf("sampling produced a false alarm: %v", res.Violation)
		}
	}
}

// TestSampledPhase2Reproducible: the same seed yields the same statistics.
func TestSampledPhase2Reproducible(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := counter1Subject()
	inc := sub.Ops[0]
	get := sub.Ops[1]
	m := &core.Test{Rows: [][]core.Op{{inc, get}, {inc}}}
	opts := core.Options{SampleSchedules: 100, SampleStrategy: sched.StrategyPCT, SampleSeed: 7}
	r1, err := core.Check(sub, m, opts)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	r2, err := core.Check(sub, m, opts)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if r1.Verdict != r2.Verdict || r1.Phase2.Histories != r2.Phase2.Histories {
		t.Fatalf("sampling not reproducible: %v/%d vs %v/%d",
			r1.Verdict, r1.Phase2.Histories, r2.Verdict, r2.Phase2.Histories)
	}
}
