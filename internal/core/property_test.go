package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lineup/internal/buggy"
	"lineup/internal/collections"
	"lineup/internal/core"
	"lineup/internal/sched"
	"lineup/internal/vsync"
)

// randomTest draws a random matrix over the subject's ops, up to maxRows x
// maxCols (at least 1x1).
func randomTest(rng *rand.Rand, ops []core.Op, maxRows, maxCols int) *core.Test {
	rows := 1 + rng.Intn(maxRows)
	m := &core.Test{}
	for r := 0; r < rows; r++ {
		cols := 1 + rng.Intn(maxCols)
		row := make([]core.Op, cols)
		for c := range row {
			row[c] = ops[rng.Intn(len(ops))]
		}
		m.Rows = append(m.Rows, row)
	}
	return m
}

// extend grows m into a strict super-test m' that has m as a prefix by
// adding exactly one invocation (appended to a row or as a new row). The
// single-op growth keeps unbounded exploration of m' tractable.
func extend(rng *rand.Rand, m *core.Test, ops []core.Op) *core.Test {
	m2 := m.Clone()
	op := ops[rng.Intn(len(ops))]
	if r := rng.Intn(len(m2.Rows) + 1); r < len(m2.Rows) {
		m2.Rows[r] = append(m2.Rows[r], op)
	} else {
		m2.Rows = append(m2.Rows, []core.Op{op})
	}
	return m2
}

// racyRegister is a deliberately cheap-to-explore buggy subject: every
// operation has one or two instrumented points, so even unbounded phase-2
// exploration stays small. Add's read-modify-write is unsynchronized, so
// updates can be lost.
func racyRegister() *core.Subject {
	type reg struct{ v *vsync.Cell[int] }
	add := core.Op{Method: "Add", Args: "1", Run: func(t *sched.Thread, o any) string {
		r := o.(*reg)
		r.v.Store(t, r.v.Load(t)+1)
		return collections.OK
	}}
	get := core.Op{Method: "Get", Run: func(t *sched.Thread, o any) string {
		return collections.Int(o.(*reg).v.Load(t))
	}}
	return &core.Subject{
		Name: "RacyRegister",
		New: func(t *sched.Thread) any {
			return &reg{v: vsync.NewCell(t, "reg.v", 0)}
		},
		Ops: []core.Op{add, get},
	}
}

func lazyPreSubject() *core.Subject {
	value := core.Op{Method: "Value", Run: func(t *sched.Thread, o any) string {
		return collections.Int(o.(*buggy.LazyPre).Value(t))
	}}
	isCreated := core.Op{Method: "IsValueCreated", Run: func(t *sched.Thread, o any) string {
		return collections.Bool(o.(*buggy.LazyPre).IsValueCreated(t))
	}}
	return &core.Subject{
		Name: "Lazy(Pre)",
		New:  func(t *sched.Thread) any { return buggy.NewLazyPre(t) },
		Ops:  []core.Op{value, isCreated},
	}
}

// TestLemma8PrefixMonotone checks the paper's Lemma 8 on random test pairs:
// if test m is a prefix of test m' and Check(X, m) fails, then
// Check(X, m') fails as well. The lemma requires unbounded phase-2
// exploration (preemption bounding compromises it), so the property runs
// with Unbounded on small tests.
func TestLemma8PrefixMonotone(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := racyRegister()
	opts := core.Options{PreemptionBound: core.Unbounded}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomTest(rng, sub.Ops, 2, 2)
		m2 := extend(rng, m, sub.Ops)
		if !m.IsPrefixOf(m2) {
			t.Fatalf("extend broke the prefix relation")
		}
		r1, err := core.Check(sub, m, opts)
		if err != nil {
			t.Fatalf("check m: %v", err)
		}
		if r1.Verdict != core.Fail {
			return true // lemma only constrains failing prefixes
		}
		r2, err := core.Check(sub, m2, opts)
		if err != nil {
			t.Fatalf("check m2: %v", err)
		}
		return r2.Verdict == core.Fail
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem5NoFalseAlarms checks completeness (Theorem 5) empirically:
// the correct, trivially linearizable Queue (every operation under one
// monitor) never fails any random test at any preemption bound — a failing
// check would be a false alarm, which Theorem 5 rules out.
func TestTheorem5NoFalseAlarms(t *testing.T) {
	sched.RequireNoLeaks(t)
	queue := &core.Subject{
		Name: "Queue",
		New:  func(th *sched.Thread) any { return collections.NewQueue(th) },
	}
	enq := core.Op{Method: "Enqueue", Args: "1", Run: func(th *sched.Thread, o any) string {
		o.(*collections.Queue).Enqueue(th, 1)
		return collections.OK
	}}
	deq := core.Op{Method: "TryDequeue", Run: func(th *sched.Thread, o any) string {
		return collections.TryInt(o.(*collections.Queue).TryDequeue(th))
	}}
	count := core.Op{Method: "Count", Run: func(th *sched.Thread, o any) string {
		return collections.Int(o.(*collections.Queue).Count(th))
	}}
	queue.Ops = []core.Op{enq, deq, count}

	prop := func(seed int64, bound uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomTest(rng, queue.Ops, 3, 2)
		pb := int(bound%3) + 1
		res, err := core.Check(queue, m, core.Options{PreemptionBound: pb})
		if err != nil {
			t.Fatalf("check: %v", err)
		}
		return res.Verdict == core.Pass
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestExplorationDeterministic re-checks random tests twice and requires
// bit-identical statistics: the whole pipeline is deterministic given the
// test and options.
func TestExplorationDeterministic(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := lazyPreSubject()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomTest(rng, sub.Ops, 3, 2)
		r1, err := core.Check(sub, m, core.Options{})
		if err != nil {
			t.Fatalf("check: %v", err)
		}
		r2, err := core.Check(sub, m, core.Options{})
		if err != nil {
			t.Fatalf("check: %v", err)
		}
		return r1.Verdict == r2.Verdict &&
			r1.Phase1.Executions == r2.Phase1.Executions &&
			r1.Phase2.Executions == r2.Phase2.Executions &&
			r1.Phase1.Histories == r2.Phase1.Histories &&
			r1.Phase2.Histories == r2.Phase2.Histories
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestShrinkPreservesFailure: whenever Shrink runs on a failing test, the
// result still fails and is a sub-test (dimension-wise) of the original.
func TestShrinkPreservesFailure(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := lazyPreSubject()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomTest(rng, sub.Ops, 3, 2)
		r, err := core.Check(sub, m, core.Options{})
		if err != nil {
			t.Fatalf("check: %v", err)
		}
		if r.Verdict != core.Fail {
			return true
		}
		min, rmin, err := core.Shrink(sub, m, core.Options{})
		if err != nil {
			t.Fatalf("shrink: %v", err)
		}
		if rmin.Verdict != core.Fail {
			return false
		}
		t0, o0 := m.Dim()
		t1, o1 := min.Dim()
		return t1 <= t0 && o1 <= o0 && min.NumOps() <= m.NumOps()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestBoundMonotoneVerdicts: raising the preemption bound never turns a
// failing test into a passing one (the schedule space only grows).
func TestBoundMonotoneVerdicts(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := lazyPreSubject()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomTest(rng, sub.Ops, 2, 2)
		failedAtLower := false
		for _, pb := range []int{core.NoPreemptions, 1, 2, 3} {
			res, err := core.Check(sub, m, core.Options{PreemptionBound: pb})
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			if failedAtLower && res.Verdict == core.Pass {
				return false
			}
			if res.Verdict == core.Fail {
				failedAtLower = true
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
