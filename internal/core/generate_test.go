package core_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"lineup/internal/core"
	"lineup/internal/sched"
	"lineup/internal/telemetry"
)

// requireWellFormed asserts the matrix invariants every mutation must
// preserve.
func requireWellFormed(t *testing.T, m *core.Test, sub *core.Subject, maxRows, maxCols int) {
	t.Helper()
	if len(m.Rows) < 1 || len(m.Rows) > maxRows {
		t.Fatalf("mutant has %d threads, want 1..%d", len(m.Rows), maxRows)
	}
	for r, row := range m.Rows {
		if len(row) < 1 || len(row) > maxCols {
			t.Fatalf("thread %d has %d invocations, want 1..%d", r, len(row), maxCols)
		}
		for _, op := range row {
			if _, ok := sub.FindOp(op.Name()); !ok {
				t.Fatalf("mutant invocation %s not in universe", op.Name())
			}
		}
	}
}

// TestMutatorWellFormed: long mutation chains never leave the space of
// well-formed matrices.
func TestMutatorWellFormed(t *testing.T) {
	sub := counterSubject()
	mu := core.NewMutator(sub.Ops, 3, 4, rand.New(rand.NewSource(11)))
	m := &core.Test{Rows: [][]core.Op{{sub.Ops[0]}}}
	for i := 0; i < 500; i++ {
		m = mu.Mutate(m)
		requireWellFormed(t, m, sub, 3, 4)
	}
}

// TestMutatorDeterministic: the same seed yields the same mutation chain.
func TestMutatorDeterministic(t *testing.T) {
	sub := counterSubject()
	chain := func(seed int64) []string {
		mu := core.NewMutator(sub.Ops, 3, 3, rand.New(rand.NewSource(seed)))
		m := &core.Test{Rows: [][]core.Op{{sub.Ops[0]}, {sub.Ops[1]}}}
		var out []string
		for i := 0; i < 100; i++ {
			m = mu.Mutate(m)
			out = append(out, m.String())
		}
		return out
	}
	a, b := chain(5), chain(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mutation chains diverge at step %d:\n%s\nvs\n%s", i, a[i], b[i])
		}
	}
}

// TestGenerateFindsCounterBug: coverage-guided generation rediscovers the
// Counter1 lost update from the op universe alone and echoes its seed.
func TestGenerateFindsCounterBug(t *testing.T) {
	sched.RequireNoLeaks(t)
	tel := telemetry.New()
	res, err := core.Generate(counter1Subject(), core.GenOptions{
		Options: core.Options{Telemetry: tel},
		Seed:    1,
		Budget:  200,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if res.Failed == nil {
		t.Fatalf("generation missed the Counter1 bug in %d tests", res.Tests)
	}
	if res.Seed != 1 {
		t.Fatalf("seed not echoed: got %d", res.Seed)
	}
	if res.TestsToFailure <= 0 || res.TestsToFailure > res.Tests {
		t.Fatalf("TestsToFailure %d out of range (tests %d)", res.TestsToFailure, res.Tests)
	}
	if res.CoveragePairs == 0 || res.CoverageHists == 0 {
		t.Fatalf("no coverage accumulated: %d pairs, %d hists", res.CoveragePairs, res.CoverageHists)
	}
	snap := tel.Snapshot()
	if snap.GenTests != int64(res.Tests) || snap.GenCovPairs != int64(res.CoveragePairs) {
		t.Fatalf("telemetry disagrees with result: %+v vs %+v", snap, res)
	}
}

// TestGenerateDeterministic: same seed, same subject, same options — the
// results agree and the persisted corpora are bit-identical.
func TestGenerateDeterministic(t *testing.T) {
	sched.RequireNoLeaks(t)
	run := func(dir string) *core.GenResult {
		res, err := core.Generate(counterSubject(), core.GenOptions{
			Seed:       42,
			Budget:     60,
			MaxThreads: 2,
			MaxOps:     2,
			CorpusDir:  dir,
			KeepGoing:  true,
		})
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		return res
	}
	dir1, dir2 := t.TempDir(), t.TempDir()
	r1, r2 := run(dir1), run(dir2)
	if r1.Tests != r2.Tests || r1.Accepted != r2.Accepted || r1.CorpusSize != r2.CorpusSize ||
		r1.CoveragePairs != r2.CoveragePairs || r1.CoverageHists != r2.CoverageHists {
		t.Fatalf("same-seed runs disagree: %+v vs %+v", r1, r2)
	}
	ents1, err := os.ReadDir(dir1)
	if err != nil {
		t.Fatal(err)
	}
	ents2, err := os.ReadDir(dir2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents1) != len(ents2) {
		t.Fatalf("corpus sizes differ: %d vs %d files", len(ents1), len(ents2))
	}
	if len(ents1) != r1.CorpusSize+1 { // + manifest.json
		t.Fatalf("corpus dir has %d files, want %d entries + manifest", len(ents1), r1.CorpusSize)
	}
	for i := range ents1 {
		if ents1[i].Name() != ents2[i].Name() {
			t.Fatalf("corpus file names differ: %s vs %s", ents1[i].Name(), ents2[i].Name())
		}
		b1, err := os.ReadFile(filepath.Join(dir1, ents1[i].Name()))
		if err != nil {
			t.Fatal(err)
		}
		b2, err := os.ReadFile(filepath.Join(dir2, ents2[i].Name()))
		if err != nil {
			t.Fatal(err)
		}
		if string(b1) != string(b2) {
			t.Fatalf("corpus file %s differs between same-seed runs", ents1[i].Name())
		}
	}
}

// TestGenerateDifferentSeedsDiverge guards against the stream accidentally
// ignoring the seed.
func TestGenerateDifferentSeedsDiverge(t *testing.T) {
	sched.RequireNoLeaks(t)
	run := func(seed int64) *core.GenResult {
		res, err := core.Generate(counterSubject(), core.GenOptions{Seed: seed, Budget: 60, MaxThreads: 2, MaxOps: 2, KeepGoing: true})
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		return res
	}
	r1, r2 := run(1), run(2)
	if r1.Accepted == r2.Accepted && r1.CoverageHists == r2.CoverageHists && r1.CorpusSize == r2.CorpusSize {
		t.Logf("warning: seeds 1 and 2 produced identical totals %+v — suspicious but possible", r1)
	}
	if r1.Seed == r2.Seed {
		t.Fatal("seeds not propagated")
	}
}

// TestAutoCheckCoverageGuided: the AutoCheck facade delegates to Generate.
func TestAutoCheckCoverageGuided(t *testing.T) {
	sched.RequireNoLeaks(t)
	res, err := core.AutoCheck(counter1Subject(), core.AutoOptions{
		MaxN:           3,
		MaxTests:       200,
		CoverageGuided: true,
		Seed:           1,
	})
	if err != nil {
		t.Fatalf("AutoCheck: %v", err)
	}
	if res.Failed == nil {
		t.Fatalf("coverage-guided AutoCheck missed the Counter1 bug in %d tests", res.Tests)
	}
	if res.Exhausted {
		t.Fatal("Exhausted set on a failing run")
	}
}

// TestTestFromNames: the persisted corpus format round-trips through the
// subject's universe, and unknown names are rejected.
func TestTestFromNames(t *testing.T) {
	sub := counterSubject()
	m, err := core.TestFromNames(sub, [][]string{{"Inc()", "Get()"}, {"Dec()"}})
	if err != nil {
		t.Fatalf("TestFromNames: %v", err)
	}
	if len(m.Rows) != 2 || m.Rows[0][1].Name() != "Get()" || m.Rows[1][0].Name() != "Dec()" {
		t.Fatalf("round-trip mangled the test:\n%s", m)
	}
	if _, err := core.TestFromNames(sub, [][]string{{"Frobnicate()"}}); err == nil {
		t.Fatal("unknown invocation accepted")
	}
}
