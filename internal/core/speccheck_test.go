package core_test

import (
	"bytes"
	"testing"

	"lineup/internal/core"
	"lineup/internal/history"
	"lineup/internal/obsfile"
	"lineup/internal/sched"
)

// TestSpecRoundtripRegression exercises the full regression workflow of
// Section 4.2: synthesize a spec from the correct counter, write it to an
// observation file, parse it back, and verify (a) the correct counter
// passes phase 2 against the reloaded spec and (b) the buggy Counter1 fails
// against the same recorded spec.
func TestSpecRoundtripRegression(t *testing.T) {
	sched.RequireNoLeaks(t)
	good := counterSubject()
	inc, get, _ := counterOps()
	m := &core.Test{Rows: [][]core.Op{{inc, get}, {inc}}}

	spec, stats, err := core.SynthesizeSpec(good, m, core.Options{})
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	if stats.Histories == 0 {
		t.Fatalf("no serial histories")
	}

	var buf bytes.Buffer
	if err := obsfile.Write(&buf, spec); err != nil {
		t.Fatalf("write: %v", err)
	}
	parsed, err := obsfile.Parse(&buf)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	reloaded := parsed.ToSpec()

	res, err := core.CheckAgainstSpec(good, m, reloaded, core.Options{})
	if err != nil {
		t.Fatalf("check good: %v", err)
	}
	if res.Verdict != core.Pass {
		t.Fatalf("correct counter fails against its own recorded spec: %v", res.Violation)
	}

	// Counter1 shares the same invocation vocabulary, so the recorded spec
	// serves as its reference too — and catches the lost update.
	bad := counter1Subject()
	// Rebuild the test with Counter1's ops (same names and results).
	m2 := &core.Test{Rows: [][]core.Op{{bad.Ops[0], bad.Ops[1]}, {bad.Ops[0]}}}
	res, err = core.CheckAgainstSpec(bad, m2, reloaded, core.Options{})
	if err != nil {
		t.Fatalf("check bad: %v", err)
	}
	if res.Verdict != core.Fail {
		t.Fatalf("Counter1 passes against the recorded counter spec")
	}
}

// TestCheckAgainstSpecRejectsNondeterministicSpec: a loaded spec that is
// itself nondeterministic fails immediately.
func TestCheckAgainstSpecRejectsNondeterministicSpec(t *testing.T) {
	sched.RequireNoLeaks(t)
	good := counterSubject()
	inc, get, _ := counterOps()
	m := &core.Test{Rows: [][]core.Op{{inc}, {get}}}
	spec, _, err := core.SynthesizeSpec(good, m, core.Options{})
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	// Poison the spec with a conflicting continuation: a serial history in
	// which the same initial Get() returns 7 instead of 0.
	spec.Add(mustSerial(t, 1, "Get()", "7"))
	res, err := core.CheckAgainstSpec(good, m, spec, core.Options{})
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if res.Verdict != core.Fail || res.Violation.Kind != core.Nondeterminism {
		t.Fatalf("nondeterministic spec accepted: %v", res)
	}
}

// mustSerial builds a one-op serial history for spec-poisoning tests.
func mustSerial(t *testing.T, thread int, name, result string) *history.SerialHistory {
	t.Helper()
	return &history.SerialHistory{Ops: []history.SerialOp{{Thread: thread, Name: name, Result: result}}}
}
