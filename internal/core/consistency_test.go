package core_test

import (
	"strings"
	"testing"

	"lineup/internal/core"
	"lineup/internal/monitor"
	"lineup/internal/sched"
)

// TestParseConsistency pins the flag vocabulary.
func TestParseConsistency(t *testing.T) {
	cases := []struct {
		in   string
		want core.Consistency
	}{
		{"", core.Linearizability},
		{"linearizable", core.Linearizability},
		{"linearizability", core.Linearizability},
		{"strict", core.Linearizability},
		{"sequential", core.SequentialConsistency},
		{"sc", core.SequentialConsistency},
		{"quiescent", core.QuiescentConsistency},
		{"qc", core.QuiescentConsistency},
	}
	for _, c := range cases {
		got, err := core.ParseConsistency(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseConsistency(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := core.ParseConsistency("eventual"); err == nil {
		t.Error("ParseConsistency accepted an unknown criterion")
	}
	if core.Linearizability.String() != "linearizable" ||
		core.SequentialConsistency.String() != "sequential" ||
		core.QuiescentConsistency.String() != "quiescent" {
		t.Error("Consistency.String() vocabulary changed")
	}
}

// TestConsistencyRequiresSpecBackend: the relaxed criteria are defined
// relative to the phase-1 specification, so combining them with the monitor
// witness backend is a configuration error, not a silent fallback.
func TestConsistencyRequiresSpecBackend(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := counterSubject()
	inc, get, _ := counterOps()
	m := &core.Test{Rows: [][]core.Op{{inc}, {get}}}
	_, err := core.Check(sub, m, core.Options{
		Consistency:   core.SequentialConsistency,
		WitnessSearch: core.WitnessMonitor,
		MonitorModel:  monitor.CounterModel(),
	})
	if err == nil || !strings.Contains(err.Error(), "spec-lookup") {
		t.Fatalf("expected a spec-lookup requirement error, got %v", err)
	}
}

// TestRelaxedCriteriaAdmitCorrectSubjects: a linearizable implementation
// passes under every criterion (the relaxations only widen the admitted
// behavior).
func TestRelaxedCriteriaAdmitCorrectSubjects(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := counterSubject()
	inc, get, dec := counterOps()
	m := &core.Test{Rows: [][]core.Op{{inc, get}, {dec, get}}}
	for _, cons := range []core.Consistency{
		core.Linearizability, core.SequentialConsistency, core.QuiescentConsistency,
	} {
		res, err := core.Check(sub, m, core.Options{Consistency: cons})
		if err != nil {
			t.Fatalf("%s: %v", cons, err)
		}
		if res.Verdict != core.Pass {
			t.Fatalf("correct counter convicted under %s:\n%s", cons, res.Violation)
		}
	}
}

// TestRelaxedCriteriaStillConvictNondeterminism: the relaxations weaken
// ordering, not determinism — the Counter1 lost update has no serial witness
// under any ordering of the operations, so even sequential consistency
// convicts it.
func TestRelaxedCriteriaStillConvictNondeterminism(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := counter1Subject()
	inc := sub.Ops[0]
	get := sub.Ops[1]
	m := &core.Test{Rows: [][]core.Op{{inc}, {inc}}, Final: []core.Op{get}}
	for _, cons := range []core.Consistency{core.SequentialConsistency, core.QuiescentConsistency} {
		res, err := core.Check(sub, m, core.Options{Consistency: cons})
		if err != nil {
			t.Fatalf("%s: %v", cons, err)
		}
		if res.Verdict != core.Fail {
			t.Fatalf("Counter1 lost update admitted under %s", cons)
		}
	}
}
