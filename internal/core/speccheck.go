package core

import (
	"time"

	"lineup/internal/history"
	"lineup/internal/sched"
)

// SynthesizeSpec runs phase 1 alone: it enumerates the serial executions of
// the test and returns the synthesized specification, together with the
// phase statistics. The specification can be persisted with
// obsfile.Write and later reloaded for regression checking (the
// observation-file workflow of Section 4.2).
func SynthesizeSpec(sub *Subject, m *Test, opts Options) (*history.Spec, PhaseStats, error) {
	spec := history.NewSpec()
	var holder any
	var err error
	start := time.Now()
	seen := make(map[string]bool)
	relaxed := opts.relaxedSet()
	stats, exploreErr := sched.Explore(sched.ExploreConfig{
		Config:          sched.Config{Serial: true},
		PreemptionBound: sched.Unbounded,
		MaxExecutions:   opts.maxExecs(),
	}, program(sub, m, &holder), func(out *sched.Outcome) bool {
		h, herr := toHistory(out)
		if herr != nil {
			err = herr
			return false
		}
		normalizeRelaxed(h, relaxed)
		key := historyKey(h)
		if seen[key] {
			return true
		}
		seen[key] = true
		spec.Add(history.ToSerial(h))
		return true
	})
	ps := PhaseStats{
		Executions: stats.Executions,
		Decisions:  stats.Decisions,
		Histories:  spec.NumFull(),
		Stuck:      spec.NumStuck(),
		Duration:   time.Since(start),
	}
	if err != nil {
		return nil, ps, err
	}
	if exploreErr != nil {
		return nil, ps, exploreErr
	}
	return spec, ps, nil
}

// witnessMode selects the linearizability definition used by phase 2.
type witnessMode int

const (
	// modeGeneralized is the paper's Definition 3: stuck histories need
	// stuck serial witnesses.
	modeGeneralized witnessMode = iota
	// modeClassic is the original Definition 1: pending operations may be
	// completed or dropped, blocking is invisible.
	modeClassic
)

// phase2 enumerates the concurrent executions of sub on m and checks every
// distinct history for witness existence under the selected witness mode,
// delegating the per-history decision to the backend selected by the options
// (spec-set lookup by default, model replay under WitnessMonitor). It is the
// shared engine behind Check, CheckAgainstModel, CheckAgainstSpec, and
// CheckWithMonitor; spec may be nil when the monitor backend is selected.
func phase2(sub *Subject, m *Test, spec *history.Spec, opts Options, mode witnessMode) (*Result, error) {
	res := &Result{Subject: sub, Test: m, Verdict: Pass}
	backend, berr := opts.witnessBackend(spec)
	if berr != nil {
		return nil, berr
	}
	if spec != nil {
		if opts.KeepSpec {
			res.Spec = spec
		}
		if w, bad := spec.Nondeterministic(); bad {
			res.Verdict = Fail
			res.Violation = &Violation{Kind: Nondeterminism, Test: m, Nondet: w}
			return res, nil
		}
	}
	var holder any
	var err error
	start := time.Now()
	seen := make(map[string]bool)
	relaxed := opts.relaxedSet()
	full, stuckN := 0, 0
	var violation *Violation
	visit := func(out *sched.Outcome) bool {
		h, herr := toHistory(out)
		if herr != nil {
			err = herr
			return false
		}
		normalizeRelaxed(h, relaxed)
		key := historyKey(h)
		if seen[key] {
			return true
		}
		seen[key] = true
		if !h.Stuck {
			full++
			ok, werr := backend.witnessFull(h)
			if werr != nil {
				err = werr
				return false
			}
			if !ok {
				if violation == nil {
					violation = &Violation{Kind: NoWitness, Test: m, History: h}
				}
				return opts.ExhaustPhase2
			}
			return true
		}
		stuckN++
		if mode == modeClassic {
			ok, werr := backend.witnessClassic(h)
			if werr != nil {
				err = werr
				return false
			}
			if !ok {
				if violation == nil {
					violation = &Violation{Kind: NoWitness, Test: m, History: h}
				}
				return opts.ExhaustPhase2
			}
			return true
		}
		for _, e := range h.Pending() {
			e := e
			ok, werr := backend.witnessStuck(h, e)
			if werr != nil {
				err = werr
				return false
			}
			if !ok {
				if violation == nil {
					violation = &Violation{Kind: StuckNoWitness, Test: m, History: h, Pending: &e}
				}
				return opts.ExhaustPhase2
			}
		}
		return true
	}
	var stats sched.ExploreStats
	var exploreErr error
	if opts.SampleSchedules > 0 {
		stats, exploreErr = sched.ExploreRandom(sched.RandomConfig{
			Config:   sched.Config{Granularity: opts.Granularity},
			Runs:     opts.SampleSchedules,
			Seed:     opts.SampleSeed,
			Strategy: opts.SampleStrategy,
			Depth:    opts.PCTDepth,
		}, program(sub, m, &holder), visit)
	} else {
		stats, exploreErr = sched.Explore(sched.ExploreConfig{
			Config:          sched.Config{Granularity: opts.Granularity},
			PreemptionBound: opts.bound(),
			MaxExecutions:   opts.maxExecs(),
		}, program(sub, m, &holder), visit)
	}
	if err != nil {
		return nil, err
	}
	if exploreErr != nil {
		return nil, exploreErr
	}
	res.Phase2 = PhaseStats{
		Executions: stats.Executions,
		Decisions:  stats.Decisions,
		Histories:  full,
		Stuck:      stuckN,
		Duration:   time.Since(start),
	}
	if violation != nil {
		res.Verdict = Fail
		res.Violation = violation
	}
	return res, nil
}

// CheckAgainstSpec runs phase 2 against a previously synthesized (or
// loaded) specification instead of re-running phase 1. This supports the
// regression-testing workflow of Section 4.2: record an observation file
// once, then re-verify the implementation's concurrent behaviors against it
// after every change. The determinism of the supplied spec is re-validated
// first.
func CheckAgainstSpec(sub *Subject, m *Test, spec *history.Spec, opts Options) (*Result, error) {
	return phase2(sub, m, spec, opts, modeGeneralized)
}
