package core

import (
	"fmt"
	"sync"
	"time"

	"lineup/internal/history"
	"lineup/internal/sched"
	"lineup/internal/telemetry"
)

// flushCacheTelemetry publishes a finished phase's history-cache counters.
// The flush happens once per phase — not per lookup — so cache totals stay a
// deterministic function of the explored schedule space.
func flushCacheTelemetry(c *telemetry.Collector, cache *histCache) {
	if c == nil {
		return
	}
	c.HistCacheHits.Add(int64(cache.hits))
	c.HistCacheEntries.Add(int64(cache.entries))
}

// SynthesizeSpec runs phase 1 alone: it enumerates the serial executions of
// the test and returns the synthesized specification, together with the
// phase statistics. The specification can be persisted with
// obsfile.Write and later reloaded for regression checking (the
// observation-file workflow of Section 4.2).
func SynthesizeSpec(sub *Subject, m *Test, opts Options) (*history.Spec, PhaseStats, error) {
	spec := history.NewSpec()
	var holder any
	var err error
	start := time.Now()
	endSpan := opts.Telemetry.StartSpan("phase1")
	defer endSpan()
	cache := newHistCache()
	defer flushCacheTelemetry(opts.Telemetry, cache)
	relaxed := opts.relaxedSet()
	// Phase 1 arms the containment config (watchdog, leak detection) but
	// stays strict: serial executions run deterministic subject code, so a
	// failure here is not schedule-dependent and aborts the check.
	stats, exploreErr := sched.Explore(sched.ExploreConfig{
		Config:          opts.schedConfig(true, false),
		PreemptionBound: sched.Unbounded,
		MaxExecutions:   opts.maxExecs(),
		Telemetry:       opts.Telemetry,
	}, program(sub, m, &holder), func(out *sched.Outcome) bool {
		_, isNew, herr := cache.lookup(out, relaxed)
		if herr != nil {
			err = herr
			return false
		}
		if !isNew {
			return true
		}
		h, herr := toHistory(out)
		if herr != nil {
			err = herr
			return false
		}
		normalizeRelaxed(h, relaxed)
		spec.Add(history.ToSerial(h))
		return true
	})
	ps := PhaseStats{
		Executions: stats.Executions,
		Decisions:  stats.Decisions,
		Histories:  spec.NumFull(),
		Stuck:      spec.NumStuck(),
		DedupHits:  cache.hits,
		Duration:   time.Since(start),
	}
	if err != nil {
		return nil, ps, err
	}
	if exploreErr != nil {
		return nil, ps, exploreErr
	}
	return spec, ps, nil
}

// witnessMode selects the linearizability definition used by phase 2.
type witnessMode int

const (
	// modeGeneralized is the paper's Definition 3: stuck histories need
	// stuck serial witnesses.
	modeGeneralized witnessMode = iota
	// modeClassic is the original Definition 1: pending operations may be
	// completed or dropped, blocking is invisible.
	modeClassic
)

// phase2Decider is the per-history decision procedure shared by the
// sequential and parallel phase-2 drivers: deduplication happens on the
// canonical encoded key (histCache) without materializing a history; only
// the first occurrence of a key pays for history construction and witness
// search.
type phase2Decider struct {
	backend witnessBackend
	mode    witnessMode
	m       *Test
	relaxed map[string]bool
	tel     *telemetry.Collector
	// consistency selects the full-history criterion; the relaxed criteria
	// (sequential, quiescent) search the phase-1 spec directly, so spec is
	// non-nil whenever consistency is not Linearizability (validated by
	// phase2). Stuck histories always go through the strict backend.
	consistency Consistency
	spec        *history.Spec
	// cov, when non-nil, receives every visited outcome's footprint pairs.
	cov *Coverage
}

// materialize builds the normalized history of a not-yet-seen outcome for
// the witness decision.
func (d *phase2Decider) materialize(out *sched.Outcome) (*history.History, error) {
	h, err := toHistory(out)
	if err != nil {
		return nil, err
	}
	normalizeRelaxed(h, d.relaxed)
	return h, nil
}

// witness decides witness existence for one not-yet-seen history, returning
// the violation it proves (nil if the history is covered) or a backend error.
func (d *phase2Decider) witness(h *history.History) (*Violation, error) {
	if d.tel != nil {
		// One query per distinct history; backend-level node counts are
		// reported by the monitor itself.
		d.tel.WitnessQueries.Add(1)
	}
	if !h.Stuck {
		var ok bool
		var err error
		switch d.consistency {
		case SequentialConsistency:
			_, ok = d.spec.WitnessSeqCon(h)
		case QuiescentConsistency:
			_, ok = d.spec.WitnessQuiescent(h)
		default:
			ok, err = d.backend.witnessFull(h)
		}
		if err != nil {
			return nil, err
		}
		if !ok {
			return &Violation{Kind: NoWitness, Test: d.m, History: h}, nil
		}
		return nil, nil
	}
	if d.mode == modeClassic {
		ok, err := d.backend.witnessClassic(h)
		if err != nil {
			return nil, err
		}
		if !ok {
			return &Violation{Kind: NoWitness, Test: d.m, History: h}, nil
		}
		return nil, nil
	}
	for _, e := range h.Pending() {
		e := e
		ok, err := d.backend.witnessStuck(h, e)
		if err != nil {
			return nil, err
		}
		if !ok {
			return &Violation{Kind: StuckNoWitness, Test: d.m, History: h, Pending: &e}, nil
		}
	}
	return nil, nil
}

// phase2Seq accumulates the sequential (and sampling) phase-2 state.
type phase2Seq struct {
	d         *phase2Decider
	exhaust   bool
	cache     *histCache
	failures  *failureCollector
	n         int // arrival index, the sequential position of the next visit
	full      int
	stuck     int
	violation *Violation
	err       error
}

func (s *phase2Seq) visit(out *sched.Outcome) bool {
	p := seqPos(s.n)
	s.n++
	if out.FailureKind() != sched.FailNone {
		// Only reachable with Options.MaxFailures > 0 (the explorer aborts
		// before visiting otherwise): contain, classify, keep exploring.
		if !s.failures.add(p, out) {
			s.err = s.failures.tooMany()
			return false
		}
		return true
	}
	s.d.cov.addPairs(out.Coverage)
	en, isNew, herr := s.cache.lookup(out, s.d.relaxed)
	if herr != nil {
		s.err = herr
		return false
	}
	if !isNew {
		// Memoized: the first occurrence already decided this history (a
		// violating key with ExhaustPhase2 keeps exploring, exactly as the
		// first occurrence did), so a repeat never changes the verdict.
		return true
	}
	if en.stuck {
		s.stuck++
	} else {
		s.full++
	}
	h, herr := s.d.materialize(out)
	if herr != nil {
		s.err = herr
		return false
	}
	en.v, en.err = s.d.witness(h)
	if en.err != nil {
		s.err = en.err
		return false
	}
	if en.v != nil {
		if s.violation == nil {
			s.violation = en.v
		}
		return s.exhaust
	}
	return true
}

// phase2Par accumulates the parallel phase-2 state. Deduplication is shared
// across workers: the first visitor of a key decides it (all others wait for
// that decision), and every occurrence records its position, so the minimal
// position of each key — which is exactly the point where the sequential
// explorer would first meet it — is known at the end. resolve then replays
// the sequential precedence over those positions, which makes the verdict
// and the reported violation identical for every worker count.
type phase2Par struct {
	d        *phase2Decider
	exhaust  bool
	failures *failureCollector
	mu       sync.Mutex
	cache    *histCache
	firstPos map[*histEntry]sched.Pos
	full     int
	stuck    int
	errs     []posError
}

type posError struct {
	pos sched.Pos
	err error
}

func (s *phase2Par) visit(out *sched.Outcome, p sched.Pos) bool {
	if out.FailureKind() != sched.FailNone {
		// Contained failure: record it with its sequential position. Once
		// the budget is exceeded at this position, returning false triggers
		// the explorer's deterministic early cancellation; addPos only stops
		// at or after the true sequential abort point, and every execution
		// before the cancellation position still completes, so resolve sees
		// the full sequential prefix of failures and prunes exactly.
		return s.failures.addPos(p, out)
	}
	s.d.cov.addPairs(out.Coverage)
	s.mu.Lock()
	en, isNew, herr := s.cache.lookup(out, s.d.relaxed)
	if herr != nil {
		s.errs = append(s.errs, posError{p, herr})
		s.mu.Unlock()
		return false
	}
	if q, ok := s.firstPos[en]; !ok || p.Before(q) {
		s.firstPos[en] = p
	}
	if isNew {
		en.done = make(chan struct{})
		if en.stuck {
			s.stuck++
		} else {
			s.full++
		}
		s.mu.Unlock()
		// Decide outside the lock: witness search is the expensive part. The
		// done channel must close on EVERY path out of the decision — a waiter
		// blocked on an entry whose decider died would hang its worker forever,
		// deadlocking ExploreParallel's final join — so the close is deferred
		// and a panicking decision (a buggy model or backend) is converted into
		// the entry's error, which every occurrence then reports at its own
		// position.
		func() {
			defer close(en.done)
			defer func() {
				if r := recover(); r != nil {
					en.v, en.err = nil, fmt.Errorf("core: witness decision panicked: %v", r)
				}
			}()
			h, herr := s.d.materialize(out)
			if herr != nil {
				en.err = herr
			} else {
				en.v, en.err = s.d.witness(h)
			}
		}()
	} else {
		s.mu.Unlock()
		// Wait for the deciding worker so that this occurrence reacts to the
		// decision exactly as the sequential explorer would at its position —
		// in particular a repeated occurrence of a failing key must stop
		// exploration here, or early cancellation could miss the sequentially
		// first stopping point.
		<-en.done
	}
	if en.err != nil {
		s.mu.Lock()
		s.errs = append(s.errs, posError{p, en.err})
		s.mu.Unlock()
		return false
	}
	if en.v != nil {
		return s.exhaust
	}
	return true
}

// resolve returns the sequentially-first terminal event — the violation
// whose key was first met earliest, a decision error at an even earlier
// position, or a failure-budget overflow whose (MaxFailures+1)-th failure
// precedes both — together with the contained failures the sequential
// explorer would have recorded before stopping. Distinct executions have
// distinct positions, so the precedence is total.
func (s *phase2Par) resolve() (*Violation, []RuntimeFailure, error) {
	s.mu.Lock()
	var vPos sched.Pos
	var v *Violation
	for _, bucket := range s.cache.buckets {
		for _, en := range bucket {
			if en.v == nil {
				continue
			}
			if p := s.firstPos[en]; vPos == nil || p.Before(vPos) {
				vPos, v = p, en.v
			}
		}
	}
	var ePos sched.Pos
	var err error
	for _, pe := range s.errs {
		if ePos == nil || pe.pos.Before(ePos) {
			ePos, err = pe.pos, pe.err
		}
	}
	s.mu.Unlock()
	tmPos := s.failures.overLimitPos()
	if err != nil && (vPos == nil || ePos.Before(vPos)) && (tmPos == nil || ePos.Before(tmPos)) {
		return nil, nil, err
	}
	if tmPos != nil && (vPos == nil || tmPos.Before(vPos)) {
		return nil, nil, s.failures.tooMany()
	}
	if v != nil && !s.exhaust {
		// The sequential explorer stops at the violation; failures it had
		// not reached by then are pruned (in-flight parallel work may have
		// visited positions past the stop).
		return v, s.failures.before(vPos), nil
	}
	return v, s.failures.before(nil), nil
}

// phase2 enumerates the concurrent executions of sub on m and checks every
// distinct history for witness existence under the selected witness mode,
// delegating the per-history decision to the backend selected by the options
// (spec-set lookup by default, model replay under WitnessMonitor). It is the
// shared engine behind Check, CheckAgainstModel, CheckAgainstSpec, and
// CheckWithMonitor; spec may be nil when the monitor backend is selected.
// Options.Workers > 1 selects the prefix-sharded parallel explorer with the
// same verdict and violation as the sequential DFS.
func phase2(sub *Subject, m *Test, spec *history.Spec, opts Options, mode witnessMode) (*Result, error) {
	res := &Result{Subject: sub, Test: m, Verdict: Pass}
	backend, berr := opts.witnessBackend(spec)
	if berr != nil {
		return nil, berr
	}
	if spec != nil {
		if opts.KeepSpec {
			res.Spec = spec
		}
		if w, bad := spec.Nondeterministic(); bad {
			res.Verdict = Fail
			res.Violation = &Violation{Kind: Nondeterminism, Test: m, Nondet: w}
			return res, nil
		}
	}
	if opts.Consistency != Linearizability {
		if opts.WitnessSearch != WitnessSpec {
			return nil, fmt.Errorf("core: %s consistency requires the spec-lookup witness backend", opts.Consistency)
		}
		if spec == nil {
			return nil, fmt.Errorf("core: %s consistency requires a phase-1 specification", opts.Consistency)
		}
	}
	d := &phase2Decider{
		backend: backend, mode: mode, m: m, relaxed: opts.relaxedSet(), tel: opts.Telemetry,
		consistency: opts.Consistency, spec: spec, cov: opts.Coverage,
	}
	contain := opts.MaxFailures > 0
	start := time.Now()
	endSpan := opts.Telemetry.StartSpan("phase2")
	defer endSpan()
	var stats sched.ExploreStats
	var exploreErr error
	var violation *Violation
	var failures []RuntimeFailure
	var full, stuckN, dedupHits int
	switch {
	case opts.SampleSchedules > 0:
		var holder any
		seq := &phase2Seq{d: d, exhaust: opts.ExhaustPhase2, cache: newHistCache(), failures: newFailureCollector(opts.MaxFailures)}
		defer flushCacheTelemetry(opts.Telemetry, seq.cache)
		defer func() { opts.Coverage.addHists(seq.cache) }()
		stats, exploreErr = sched.ExploreRandom(sched.RandomConfig{
			Config:            opts.schedConfig(false, false),
			Runs:              opts.SampleSchedules,
			Seed:              opts.SampleSeed,
			Strategy:          opts.SampleStrategy,
			Depth:             opts.PCTDepth,
			ContinueOnFailure: contain,
			Telemetry:         opts.Telemetry,
		}, program(sub, m, &holder), seq.visit)
		if seq.err != nil {
			return nil, seq.err
		}
		if exploreErr != nil {
			return nil, exploreErr
		}
		violation, full, stuckN, dedupHits = seq.violation, seq.full, seq.stuck, seq.cache.hits
		failures = seq.failures.before(nil)
	case opts.Workers > 1:
		par := &phase2Par{
			d:        d,
			exhaust:  opts.ExhaustPhase2,
			failures: newFailureCollector(opts.MaxFailures),
			cache:    newHistCache(),
			firstPos: make(map[*histEntry]sched.Pos),
		}
		defer flushCacheTelemetry(opts.Telemetry, par.cache)
		defer func() { opts.Coverage.addHists(par.cache) }()
		stats, exploreErr = sched.ExploreParallel(sched.ExploreConfig{
			Config:            opts.schedConfig(false, false),
			PreemptionBound:   opts.bound(),
			MaxExecutions:     opts.maxExecs(),
			ContinueOnFailure: contain,
			Reduction:         opts.Reduction,
			Telemetry:         opts.Telemetry,
		}, sched.ParallelConfig{
			Workers:  opts.Workers,
			Progress: opts.ShardProgress,
		}, func() sched.Program {
			var holder any
			return program(sub, m, &holder)
		}, par.visit)
		// A non-budget explorer error is an execution failure that precedes
		// every visit-level stop in sequential order (the explorer's own
		// minimal-position selection), so it wins.
		if exploreErr != nil && exploreErr != sched.ErrBudget {
			return nil, exploreErr
		}
		v, fs, verr := par.resolve()
		if verr != nil {
			return nil, verr
		}
		if exploreErr == sched.ErrBudget {
			return nil, exploreErr
		}
		violation, full, stuckN, dedupHits, failures = v, par.full, par.stuck, par.cache.hits, fs
	default:
		var holder any
		seq := &phase2Seq{d: d, exhaust: opts.ExhaustPhase2, cache: newHistCache(), failures: newFailureCollector(opts.MaxFailures)}
		defer flushCacheTelemetry(opts.Telemetry, seq.cache)
		defer func() { opts.Coverage.addHists(seq.cache) }()
		stats, exploreErr = sched.Explore(sched.ExploreConfig{
			Config:            opts.schedConfig(false, false),
			PreemptionBound:   opts.bound(),
			MaxExecutions:     opts.maxExecs(),
			ContinueOnFailure: contain,
			Reduction:         opts.Reduction,
			Telemetry:         opts.Telemetry,
		}, program(sub, m, &holder), seq.visit)
		if seq.err != nil {
			return nil, seq.err
		}
		if exploreErr != nil {
			return nil, exploreErr
		}
		violation, full, stuckN, dedupHits = seq.violation, seq.full, seq.stuck, seq.cache.hits
		failures = seq.failures.before(nil)
	}
	res.Phase2 = PhaseStats{
		Executions: stats.Executions,
		Decisions:  stats.Decisions,
		Histories:  full,
		Stuck:      stuckN,
		Pruned:     stats.Pruned,
		DedupHits:  dedupHits,
		Duration:   time.Since(start),
	}
	res.Failures = failures
	if violation != nil {
		res.Verdict = Fail
		res.Violation = violation
	}
	return res, nil
}

// CheckAgainstSpec runs phase 2 against a previously synthesized (or
// loaded) specification instead of re-running phase 1. This supports the
// regression-testing workflow of Section 4.2: record an observation file
// once, then re-verify the implementation's concurrent behaviors against it
// after every change. The determinism of the supplied spec is re-validated
// first.
func CheckAgainstSpec(sub *Subject, m *Test, spec *history.Spec, opts Options) (*Result, error) {
	return phase2(sub, m, spec, opts, modeGeneralized)
}
