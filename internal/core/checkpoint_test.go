package core_test

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"lineup/internal/core"
	"lineup/internal/sched"
)

// summaryKey fingerprints the resume-relevant parts of a RandomSummary.
func summaryKey(sum *core.RandomSummary) string {
	s := fmt.Sprintf("passed=%d failed=%d", sum.Passed, sum.Failed)
	for k, r := range sum.Results {
		if r == nil {
			s += fmt.Sprintf(" %d:nil", k)
			continue
		}
		s += fmt.Sprintf(" %d:%v/p1=%d,%d/p2=%d,%d", k, r.Verdict,
			r.Phase1.Executions, r.Phase1.Histories, r.Phase2.Executions, r.Phase2.Histories)
	}
	return s
}

func randomOpts(workers int) core.RandomOptions {
	return core.RandomOptions{
		Rows: 2, Cols: 2, Samples: 8, Seed: 7,
		Options: core.Options{MaxExecutionsPerPhase: 50000},
		Workers: workers,
	}
}

// TestRandomCheckpointResume interrupts a RandomCheck after a few completed
// tests and resumes from the saved checkpoint: the final summary — per-test
// stats, verdicts, and the first violation — must match the uninterrupted
// run, for sequential and parallel test workers alike.
func TestRandomCheckpointResume(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := counter1Subject()
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			full, err := core.RandomCheck(sub, nil, randomOpts(workers))
			if err != nil {
				t.Fatalf("uninterrupted run: %v", err)
			}
			if full.Failed == 0 {
				t.Fatalf("Counter1 sample found no failures; the fixture is useless")
			}

			// Interrupted run: stop (via checkpoint error) after 3 tests.
			path := filepath.Join(t.TempDir(), "ckpt.json")
			stop := fmt.Errorf("simulated kill")
			opts := randomOpts(workers)
			completed := 0
			opts.Checkpoint = func(cp *core.RandomCheckpoint) error {
				if err := cp.Save(path); err != nil {
					return err
				}
				completed++
				if completed >= 3 {
					return stop
				}
				return nil
			}
			if _, err := core.RandomCheck(sub, nil, opts); err == nil {
				t.Fatalf("interrupted run returned no error")
			}

			cp, err := core.LoadRandomCheckpoint(path)
			if err != nil {
				t.Fatalf("loading checkpoint: %v", err)
			}
			if len(cp.Tests) == 0 {
				t.Fatalf("checkpoint recorded no tests")
			}

			resumed := randomOpts(workers)
			resumed.Resume = cp
			ran := 0
			resumed.Checkpoint = func(*core.RandomCheckpoint) error { ran++; return nil }
			sum, err := core.RandomCheck(sub, nil, resumed)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if want := len(sum.Results) - len(cp.Tests); ran != want {
				t.Errorf("resumed run checked %d tests, want %d (skipping %d restored)", ran, want, len(cp.Tests))
			}
			if got, want := summaryKey(sum), summaryKey(full); got != want {
				t.Errorf("resumed summary differs from uninterrupted run:\n got %s\nwant %s", got, want)
			}
			if sum.FirstFailure == nil || sum.FirstFailure.Violation == nil {
				t.Fatalf("resumed run lost the first-failure violation report")
			}
			if full.FirstFailure.Test.String() != sum.FirstFailure.Test.String() {
				t.Errorf("first failing test differs:\n got %s\nwant %s",
					sum.FirstFailure.Test, full.FirstFailure.Test)
			}
			if full.FirstFailure.Violation.Kind != sum.FirstFailure.Violation.Kind {
				t.Errorf("first violation kind differs: got %v want %v",
					sum.FirstFailure.Violation.Kind, full.FirstFailure.Violation.Kind)
			}
		})
	}
}

// TestRandomCheckpointRejectsMismatchedConfig guards against silently
// resuming a checkpoint into a run that would sample different tests.
func TestRandomCheckpointRejectsMismatchedConfig(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := counter1Subject()
	opts := randomOpts(1)
	path := filepath.Join(t.TempDir(), "ckpt.json")
	opts.Checkpoint = func(cp *core.RandomCheckpoint) error { return cp.Save(path) }
	if _, err := core.RandomCheck(sub, nil, opts); err != nil {
		t.Fatalf("base run: %v", err)
	}
	cp, err := core.LoadRandomCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := randomOpts(1)
	bad.Seed = 99
	bad.Resume = cp
	if _, err := core.RandomCheck(sub, nil, bad); err == nil {
		t.Fatalf("resume with a different seed was accepted")
	}
}

// TestRandomCheckpointReportsAllMismatches: a stale checkpoint differing in
// several fields names every one of them in a single error, so the operator
// fixes the resume invocation in one pass instead of one failure per field.
func TestRandomCheckpointReportsAllMismatches(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := counter1Subject()
	opts := randomOpts(1)
	path := filepath.Join(t.TempDir(), "ckpt.json")
	opts.Checkpoint = func(cp *core.RandomCheckpoint) error { return cp.Save(path) }
	if _, err := core.RandomCheck(sub, nil, opts); err != nil {
		t.Fatalf("base run: %v", err)
	}
	cp, err := core.LoadRandomCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := randomOpts(1)
	bad.Seed = 99
	bad.Samples = 16
	bad.Options.PreemptionBound = 1
	bad.Options.Reduction = sched.ReductionSleep
	bad.Resume = cp
	_, err = core.RandomCheck(sub, nil, bad)
	if err == nil {
		t.Fatal("mismatched resume was accepted")
	}
	for _, field := range []string{"seed", "samples", "preemption bound", "reduction"} {
		if !strings.Contains(err.Error(), field) {
			t.Errorf("mismatch error omits %q: %v", field, err)
		}
	}
}
