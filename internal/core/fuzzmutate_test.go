package core

import (
	"math/rand"
	"reflect"
	"testing"

	"lineup/internal/collections"
	"lineup/internal/sched"
)

// fuzzCounterSubject is an in-package copy of the counter subject: the fuzz
// target exercises the unexported program() plumbing, so it cannot live in
// package core_test.
func fuzzCounterSubject() *Subject {
	inc := Op{Method: "Inc", Run: func(t *sched.Thread, obj any) string {
		obj.(*collections.Counter).Inc(t)
		return collections.OK
	}}
	get := Op{Method: "Get", Run: func(t *sched.Thread, obj any) string {
		return collections.Int(obj.(*collections.Counter).Get(t))
	}}
	dec := Op{Method: "Dec", Run: func(t *sched.Thread, obj any) string {
		obj.(*collections.Counter).Dec(t)
		return collections.OK
	}}
	return &Subject{
		Name: "Counter",
		New:  func(t *sched.Thread) any { return collections.NewCounter(t) },
		Ops:  []Op{inc, get, dec},
	}
}

// FuzzMutate drives the matrix mutator with fuzzed (seed, chain-length)
// inputs and checks the two invariants everything downstream relies on:
// every mutant stays a well-formed matrix over the subject's op universe,
// and every execution of a mutant is replayable — re-running the recorded
// schedule through sched.ReplaySchedule reproduces the exact same event
// sequence with no divergence.
func FuzzMutate(f *testing.F) {
	f.Add(int64(1), uint8(1))
	f.Add(int64(42), uint8(17))
	f.Add(int64(-7), uint8(63))
	f.Add(int64(1<<40), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, steps uint8) {
		const maxRows, maxCols = 3, 3
		sub := fuzzCounterSubject()
		mu := NewMutator(sub.Ops, maxRows, maxCols, rand.New(rand.NewSource(seed)))
		m := &Test{Rows: [][]Op{{sub.Ops[0]}, {sub.Ops[1]}}}
		for i := 0; i < int(steps%64)+1; i++ {
			m = mu.Mutate(m)
			if len(m.Rows) < 1 || len(m.Rows) > maxRows {
				t.Fatalf("step %d: mutant has %d threads, want 1..%d", i, len(m.Rows), maxRows)
			}
			for r, row := range m.Rows {
				if len(row) < 1 || len(row) > maxCols {
					t.Fatalf("step %d: thread %d has %d invocations, want 1..%d", i, r, len(row), maxCols)
				}
				for _, op := range row {
					if _, ok := sub.FindOp(op.Name()); !ok {
						t.Fatalf("step %d: invocation %s not in universe", i, op.Name())
					}
				}
			}
		}

		// Replay check on the final mutant: the first few explored
		// executions must reproduce bit-identically from their recorded
		// schedules.
		var opts Options
		cfg := opts.schedConfig(false, false)
		execs := 0
		var holder any
		_, err := sched.Explore(sched.ExploreConfig{
			Config:          cfg,
			PreemptionBound: 1,
			MaxExecutions:   4,
		}, program(sub, m, &holder), func(out *sched.Outcome) bool {
			execs++
			if out.Err != nil {
				t.Fatalf("subject panicked on mutant:\n%s\n%v", m, out.Err)
			}
			var rh any
			replay, rerr := sched.ReplaySchedule(cfg, program(sub, m, &rh), out.Schedule)
			if rerr != nil {
				t.Fatalf("schedule diverged on replay of mutant:\n%s\n%v", m, rerr)
			}
			if !reflect.DeepEqual(replay.Events, out.Events) {
				t.Fatalf("replay produced different events for mutant:\n%s\noriginal: %v\nreplay:   %v",
					m, out.Events, replay.Events)
			}
			if replay.Stuck != out.Stuck {
				t.Fatalf("replay stuckness differs for mutant:\n%s", m)
			}
			return execs < 4
		})
		if err != nil {
			t.Fatalf("explore: %v", err)
		}
		if execs == 0 {
			t.Fatalf("no executions explored for mutant:\n%s", m)
		}
	})
}
