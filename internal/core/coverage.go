package core

import "sync"

// Coverage accumulates the two feedback signals of coverage-guided test
// generation across any number of checks:
//
//   - footprint pairs: the distinct (MemKind, location) pairs phase-2
//     executions touch, as exported by sched.Outcome.Coverage. Location
//     identifiers are dense per execution and allocated in construction
//     order, so pairs are comparable across executions and tests of the same
//     subject; a mutant that drives the subject through a new access kind on
//     a location (say, the first contended CAS on a tail pointer) registers
//     as new coverage.
//   - history hashes: the 64-bit FNV-1a keys of the canonical phase-2
//     history encoding (the same keys the dedup cache buckets by). A mutant
//     whose schedules produce a call/return interleaving no earlier test
//     produced registers as new coverage even when it touches no new
//     location.
//
// Coverage is observe-only — it never feeds a verdict — and safe for
// concurrent use (the parallel explorer merges outcomes from many workers).
// Totals are deterministic for a fixed sequence of checks because both
// signals are sets.
type Coverage struct {
	mu    sync.Mutex
	pairs map[uint64]struct{}
	hists map[uint64]struct{}
}

// NewCoverage creates an empty coverage accumulator.
func NewCoverage() *Coverage {
	return &Coverage{
		pairs: make(map[uint64]struct{}),
		hists: make(map[uint64]struct{}),
	}
}

// Pairs returns the number of distinct (MemKind, location) pairs observed.
func (c *Coverage) Pairs() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pairs)
}

// Hists returns the number of distinct canonical phase-2 histories observed.
func (c *Coverage) Hists() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.hists)
}

// addPairs merges one execution's footprint pairs.
func (c *Coverage) addPairs(keys []uint64) {
	if c == nil || len(keys) == 0 {
		return
	}
	c.mu.Lock()
	for _, k := range keys {
		c.pairs[k] = struct{}{}
	}
	c.mu.Unlock()
}

// addHists merges the canonical history hashes of a finished phase-2 cache.
func (c *Coverage) addHists(cache *histCache) {
	if c == nil || cache == nil {
		return
	}
	c.mu.Lock()
	for h := range cache.buckets {
		c.hists[h] = struct{}{}
	}
	c.mu.Unlock()
}
