package core

import (
	"fmt"
	"sort"
	"sync"

	"lineup/internal/sched"
)

// RuntimeFailure is one contained execution failure observed during phase-2
// exploration: the subject panicked, hung (blocked on an uninstrumented
// primitive or spun without yielding, caught by the watchdog), or leaked
// goroutines. With Options.MaxFailures > 0 such executions do not abort the
// check; they are classified, recorded, and exploration continues.
type RuntimeFailure struct {
	// Kind classifies the failure (panic / hung / leak).
	Kind sched.FailureKind `json:"kind"`
	// Message is the human-readable failure description.
	Message string `json:"message"`
	// Schedule is the scheduling-decision prefix of the failing execution;
	// sched.ReplaySchedule reproduces the failure from it.
	Schedule []sched.ThreadID `json:"schedule"`
	// Stack is the panicking goroutine's stack (panics only).
	Stack string `json:"stack,omitempty"`
}

func (f RuntimeFailure) String() string {
	return fmt.Sprintf("[%s] %s (schedule prefix %v)", f.Kind, f.Message, f.Schedule)
}

// classifyFailure builds the failure record for a failed execution outcome.
func classifyFailure(out *sched.Outcome) RuntimeFailure {
	f := RuntimeFailure{
		Kind:     out.FailureKind(),
		Schedule: append([]sched.ThreadID(nil), out.Schedule...),
	}
	if err := out.FailureError(); err != nil {
		f.Message = err.Error()
	}
	if f.Kind == sched.FailPanic {
		f.Message = fmt.Sprintf("subject panicked: %v", out.PanicValue)
		f.Stack = string(out.PanicStack)
	}
	return f
}

// TooManyFailuresError aborts a check whose contained failures exceeded
// Options.MaxFailures. Failures holds the first MaxFailures records in
// sequential exploration order.
type TooManyFailuresError struct {
	Limit    int
	Failures []RuntimeFailure
}

func (e *TooManyFailuresError) Error() string {
	return fmt.Sprintf("core: more than %d contained runtime failures; first: %s", e.Limit, e.Failures[0].String())
}

// posFailure pairs a failure with its position in sequential exploration
// order (for the sequential explorer, the arrival index).
type posFailure struct {
	pos sched.Pos
	f   RuntimeFailure
}

// failureCollector accumulates contained failures across (possibly
// concurrent) phase-2 visits. The sequential driver adds failures in
// exploration order and add reports immediately when the budget is
// exceeded; the parallel driver adds every failure it sees — a superset of
// the sequential run's, bounded by early cancellation — and prunes to the
// exact sequential set at resolve time (sortedBefore / overLimitPos).
type failureCollector struct {
	max int
	mu  sync.Mutex
	fs  []posFailure
}

func newFailureCollector(max int) *failureCollector {
	return &failureCollector{max: max}
}

// add records a failure at position p and reports whether the collection is
// still within budget (len <= max after recording).
func (c *failureCollector) add(p sched.Pos, out *sched.Outcome) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fs = append(c.fs, posFailure{pos: append(sched.Pos(nil), p...), f: classifyFailure(out)})
	return len(c.fs) <= c.max
}

// addPos records a failure found by the parallel explorer at position p and
// reports whether exploration should continue. It must NOT stop at the
// (max+1)-th *arrival* — arrivals are timing-dependent, and cancelling there
// can abandon failures that precede the true abort point in sequential
// order. Instead it stops only when p is at or past the (max+1)-th smallest
// position known so far: that bound only shrinks toward the true sequential
// abort point as failures arrive, so the cancellation position is always at
// or after it, and the coordinator's before-the-cancel completeness
// guarantee keeps every sequentially-earlier failure in the collection.
func (c *failureCollector) addPos(p sched.Pos, out *sched.Outcome) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fs = append(c.fs, posFailure{pos: append(sched.Pos(nil), p...), f: classifyFailure(out)})
	if len(c.fs) <= c.max {
		return true
	}
	positions := make([]sched.Pos, len(c.fs))
	for i, pf := range c.fs {
		positions[i] = pf.pos
	}
	sort.Slice(positions, func(i, j int) bool { return positions[i].Before(positions[j]) })
	return p.Before(positions[c.max])
}

func (c *failureCollector) sorted() []posFailure {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]posFailure(nil), c.fs...)
	sort.Slice(out, func(i, j int) bool { return out[i].pos.Before(out[j].pos) })
	return out
}

// overLimitPos returns the position of the (max+1)-th failure in sequential
// order — the exact point where the sequential explorer would abort with
// TooManyFailuresError — or nil while the collection is within budget.
func (c *failureCollector) overLimitPos() sched.Pos {
	s := c.sorted()
	if len(s) <= c.max {
		return nil
	}
	return s[c.max].pos
}

// tooMany builds the abort error from the first max failures in sequential
// order.
func (c *failureCollector) tooMany() *TooManyFailuresError {
	s := c.sorted()
	e := &TooManyFailuresError{Limit: c.max}
	for i := 0; i < len(s) && i < c.max; i++ {
		e.Failures = append(e.Failures, s[i].f)
	}
	return e
}

// before returns the recorded failures strictly before stop (all of them
// when stop is nil), in sequential order.
func (c *failureCollector) before(stop sched.Pos) []RuntimeFailure {
	var out []RuntimeFailure
	for _, pf := range c.sorted() {
		if stop != nil && !pf.pos.Before(stop) {
			continue
		}
		out = append(out, pf.f)
	}
	return out
}

// seqPos wraps a sequential arrival index as a position comparable with
// sched.Pos ordering.
func seqPos(n int) sched.Pos { return sched.Pos{n} }
