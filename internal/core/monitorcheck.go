package core

import (
	"errors"
	"strconv"

	"lineup/internal/history"
	"lineup/internal/monitor"
	"lineup/internal/monitor/fast"
	"lineup/internal/telemetry"
)

// WitnessSearch selects phase 2's witness decision backend.
type WitnessSearch int

const (
	// WitnessSpec (the default) decides witness existence by lookup in the
	// phase-1 synthesized specification set, the Check(X, m) algorithm of
	// Fig. 5.
	WitnessSpec WitnessSearch = iota
	// WitnessMonitor decides witness existence by replaying candidate
	// linearizations of each observed history through an executable
	// sequential model with the internal/monitor Wing–Gong search. Phase 1
	// is not consulted: the model plays the role of the specification
	// directly, so no serial enumeration is needed.
	WitnessMonitor
	// WitnessFast routes histories of the five classic data types through
	// the specialized near-log-linear monitors of internal/monitor/fast,
	// falling back to the memoized Wing–Gong search whenever a history is
	// outside their decidable fragment (pending operations, duplicate
	// values, observer operations). The fallback keeps verdicts
	// bit-identical to WitnessMonitor; telemetry counts hits and fallbacks.
	WitnessFast
)

// String renders the backend name the CLI's -witness flag accepts.
func (w WitnessSearch) String() string {
	switch w {
	case WitnessMonitor:
		return "monitor"
	case WitnessFast:
		return "fast"
	default:
		return "spec"
	}
}

// ParseWitness parses a -witness flag value into a WitnessSearch.
func ParseWitness(s string) (WitnessSearch, error) {
	switch s {
	case "", "spec":
		return WitnessSpec, nil
	case "monitor":
		return WitnessMonitor, nil
	case "fast":
		return WitnessFast, nil
	default:
		return WitnessSpec, errors.New("core: unknown witness backend " + strconv.Quote(s) + " (spec, monitor, or fast)")
	}
}

// witnessBackend abstracts the phase-2 witness decision procedure over the
// three checks of Fig. 5: complete histories, classic pending treatment, and
// the generalized per-pending-operation stuck check.
type witnessBackend interface {
	witnessFull(h *history.History) (bool, error)
	witnessClassic(h *history.History) (bool, error)
	witnessStuck(h *history.History, e history.Op) (bool, error)
}

// witnessBackend resolves the backend selected by the options. spec may be
// nil when the monitor backend is selected.
func (o Options) witnessBackend(spec *history.Spec) (witnessBackend, error) {
	if o.WitnessSearch == WitnessMonitor || o.WitnessSearch == WitnessFast {
		if o.MonitorModel == nil {
			return nil, errors.New("core: the monitor witness backends require Options.MonitorModel")
		}
		slow := monitorBackend{model: o.MonitorModel, tel: o.Telemetry}
		if o.WitnessSearch == WitnessFast {
			if kind, ok := fast.KindFor(o.MonitorModel.Name); ok {
				return fastBackend{kind: kind, slow: slow, tel: o.Telemetry}, nil
			}
			// No specialized monitor for this model: every history would
			// fall back, so use the general backend directly.
			return slow, nil
		}
		return slow, nil
	}
	if spec == nil {
		return nil, errors.New("core: the specification backend requires a synthesized spec")
	}
	return specBackend{spec: spec}, nil
}

// specBackend is the paper's backend: witness existence is a lookup in the
// specification set synthesized by phase 1.
type specBackend struct{ spec *history.Spec }

func (b specBackend) witnessFull(h *history.History) (bool, error) {
	_, ok := b.spec.WitnessFull(h)
	return ok, nil
}

func (b specBackend) witnessClassic(h *history.History) (bool, error) {
	_, ok := b.spec.WitnessClassic(h)
	return ok, nil
}

func (b specBackend) witnessStuck(h *history.History, e history.Op) (bool, error) {
	_, ok := b.spec.WitnessStuck(h, e)
	return ok, nil
}

// monitorBackend decides witness existence with the monitor's memoized
// Wing–Gong search against an executable model.
type monitorBackend struct {
	model *monitor.Model
	tel   *telemetry.Collector
}

func (b monitorBackend) check(h *history.History, mode monitor.Mode) (bool, error) {
	out, err := monitor.Check(b.model, h, monitor.Options{Mode: mode, Telemetry: b.tel})
	if err != nil {
		return false, err
	}
	return out.Linearizable, nil
}

func (b monitorBackend) witnessFull(h *history.History) (bool, error) {
	return b.check(h, monitor.ModeAuto)
}

func (b monitorBackend) witnessClassic(h *history.History) (bool, error) {
	return b.check(h, monitor.ModeClassic)
}

func (b monitorBackend) witnessStuck(h *history.History, e history.Op) (bool, error) {
	return b.check(monitor.Reduce(h, e), monitor.ModeGeneralized)
}

// fastBackend tries the specialized near-log-linear monitor first and falls
// back to the general memoized search on ErrAmbiguous. Definite fast
// verdicts are certificate-backed (a constructed witness for true, a
// violation certificate for false), so agreement with the fallback is by
// construction, not by luck.
type fastBackend struct {
	kind fast.Kind
	slow monitorBackend
	tel  *telemetry.Collector
}

func (b fastBackend) try(h *history.History, slow func() (bool, error)) (bool, error) {
	ok, err := fast.Check(b.kind, h)
	if err == nil {
		b.tel.AddFastHit()
		return ok, nil
	}
	if !errors.Is(err, fast.ErrAmbiguous) {
		return false, err
	}
	b.tel.AddFastFallback()
	return slow()
}

func (b fastBackend) witnessFull(h *history.History) (bool, error) {
	return b.try(h, func() (bool, error) { return b.slow.witnessFull(h) })
}

func (b fastBackend) witnessClassic(h *history.History) (bool, error) {
	// The classic treatment drops pending operations only; on complete
	// histories it coincides with the full check, and incomplete histories
	// are outside the fast fragment anyway.
	return b.try(h, func() (bool, error) { return b.slow.witnessClassic(h) })
}

func (b fastBackend) witnessStuck(h *history.History, e history.Op) (bool, error) {
	// Stuck histories are outside every fast fragment; go straight to the
	// general search.
	b.tel.AddFastFallback()
	return b.slow.witnessStuck(h, e)
}

// CheckWithMonitor checks sub against an executable sequential model using
// the monitor as phase 2's witness backend: it enumerates the concurrent
// executions of sub on m and decides witness existence for every distinct
// history by model replay. No phase-1 serial enumeration runs — the model is
// the specification. ClassicOnly selects the original Definition 1 treatment
// of pending operations, as in CheckAgainstModel.
func CheckWithMonitor(sub *Subject, model *monitor.Model, m *Test, opts RefOptions) (*Result, error) {
	if model == nil {
		return nil, errors.New("core: CheckWithMonitor requires a model")
	}
	opts.WitnessSearch = WitnessMonitor
	opts.MonitorModel = model
	mode := modeGeneralized
	if opts.ClassicOnly {
		mode = modeClassic
	}
	return phase2(sub, m, nil, opts.Options, mode)
}
