package core

import (
	"errors"

	"lineup/internal/history"
	"lineup/internal/monitor"
	"lineup/internal/telemetry"
)

// WitnessSearch selects phase 2's witness decision backend.
type WitnessSearch int

const (
	// WitnessSpec (the default) decides witness existence by lookup in the
	// phase-1 synthesized specification set, the Check(X, m) algorithm of
	// Fig. 5.
	WitnessSpec WitnessSearch = iota
	// WitnessMonitor decides witness existence by replaying candidate
	// linearizations of each observed history through an executable
	// sequential model with the internal/monitor Wing–Gong search. Phase 1
	// is not consulted: the model plays the role of the specification
	// directly, so no serial enumeration is needed.
	WitnessMonitor
)

// witnessBackend abstracts the phase-2 witness decision procedure over the
// three checks of Fig. 5: complete histories, classic pending treatment, and
// the generalized per-pending-operation stuck check.
type witnessBackend interface {
	witnessFull(h *history.History) (bool, error)
	witnessClassic(h *history.History) (bool, error)
	witnessStuck(h *history.History, e history.Op) (bool, error)
}

// witnessBackend resolves the backend selected by the options. spec may be
// nil when the monitor backend is selected.
func (o Options) witnessBackend(spec *history.Spec) (witnessBackend, error) {
	if o.WitnessSearch == WitnessMonitor {
		if o.MonitorModel == nil {
			return nil, errors.New("core: WitnessSearch == WitnessMonitor requires Options.MonitorModel")
		}
		return monitorBackend{model: o.MonitorModel, tel: o.Telemetry}, nil
	}
	if spec == nil {
		return nil, errors.New("core: the specification backend requires a synthesized spec")
	}
	return specBackend{spec: spec}, nil
}

// specBackend is the paper's backend: witness existence is a lookup in the
// specification set synthesized by phase 1.
type specBackend struct{ spec *history.Spec }

func (b specBackend) witnessFull(h *history.History) (bool, error) {
	_, ok := b.spec.WitnessFull(h)
	return ok, nil
}

func (b specBackend) witnessClassic(h *history.History) (bool, error) {
	_, ok := b.spec.WitnessClassic(h)
	return ok, nil
}

func (b specBackend) witnessStuck(h *history.History, e history.Op) (bool, error) {
	_, ok := b.spec.WitnessStuck(h, e)
	return ok, nil
}

// monitorBackend decides witness existence with the monitor's memoized
// Wing–Gong search against an executable model.
type monitorBackend struct {
	model *monitor.Model
	tel   *telemetry.Collector
}

func (b monitorBackend) check(h *history.History, mode monitor.Mode) (bool, error) {
	out, err := monitor.Check(b.model, h, monitor.Options{Mode: mode, Telemetry: b.tel})
	if err != nil {
		return false, err
	}
	return out.Linearizable, nil
}

func (b monitorBackend) witnessFull(h *history.History) (bool, error) {
	return b.check(h, monitor.ModeAuto)
}

func (b monitorBackend) witnessClassic(h *history.History) (bool, error) {
	return b.check(h, monitor.ModeClassic)
}

func (b monitorBackend) witnessStuck(h *history.History, e history.Op) (bool, error) {
	return b.check(monitor.Reduce(h, e), monitor.ModeGeneralized)
}

// CheckWithMonitor checks sub against an executable sequential model using
// the monitor as phase 2's witness backend: it enumerates the concurrent
// executions of sub on m and decides witness existence for every distinct
// history by model replay. No phase-1 serial enumeration runs — the model is
// the specification. ClassicOnly selects the original Definition 1 treatment
// of pending operations, as in CheckAgainstModel.
func CheckWithMonitor(sub *Subject, model *monitor.Model, m *Test, opts RefOptions) (*Result, error) {
	if model == nil {
		return nil, errors.New("core: CheckWithMonitor requires a model")
	}
	opts.WitnessSearch = WitnessMonitor
	opts.MonitorModel = model
	mode := modeGeneralized
	if opts.ClassicOnly {
		mode = modeClassic
	}
	return phase2(sub, m, nil, opts.Options, mode)
}
