package core

// Shrink minimizes a failing test, automating the manual reduction of
// Section 5.1 ("we manually remove operations from failing 3x3 test
// matrices to obtain a failing test of minimal dimension"). It greedily
// removes whole threads, then individual invocations, re-running Check
// after every removal and keeping any smaller test that still fails. The
// returned test is 1-minimal: removing any single invocation makes the
// check pass.
func Shrink(sub *Subject, m *Test, opts Options) (*Test, *Result, error) {
	cur := m.Clone()
	res, err := Check(sub, cur, opts)
	if err != nil {
		return nil, nil, err
	}
	if res.Verdict != Fail {
		return cur, res, nil // nothing to shrink
	}
	for {
		smaller, r, err := shrinkStep(sub, cur, opts)
		if err != nil {
			return nil, nil, err
		}
		if smaller == nil {
			return cur, res, nil
		}
		cur, res = smaller, r
	}
}

// shrinkStep tries every single-removal candidate and returns the first one
// that still fails, or nil if none does.
func shrinkStep(sub *Subject, m *Test, opts Options) (*Test, *Result, error) {
	// Whole-thread removal first: it shrinks fastest.
	for i := range m.Rows {
		cand := m.Clone()
		cand.Rows = append(cand.Rows[:i], cand.Rows[i+1:]...)
		if len(cand.Rows) == 0 {
			continue
		}
		r, err := Check(sub, cand, opts)
		if err != nil {
			return nil, nil, err
		}
		if r.Verdict == Fail {
			return cand, r, nil
		}
	}
	// Single-invocation removal, last invocations first (suffix removals
	// preserve prefix semantics and tend to stay failing).
	for i := range m.Rows {
		for j := len(m.Rows[i]) - 1; j >= 0; j-- {
			cand := m.Clone()
			row := cand.Rows[i]
			cand.Rows[i] = append(append([]Op(nil), row[:j]...), row[j+1:]...)
			if len(cand.Rows[i]) == 0 {
				cand.Rows = append(cand.Rows[:i], cand.Rows[i+1:]...)
				if len(cand.Rows) == 0 {
					continue
				}
			}
			r, err := Check(sub, cand, opts)
			if err != nil {
				return nil, nil, err
			}
			if r.Verdict == Fail {
				return cand, r, nil
			}
		}
	}
	// Final-sequence removal.
	for j := range m.Final {
		cand := m.Clone()
		cand.Final = append(append([]Op(nil), m.Final[:j]...), m.Final[j+1:]...)
		r, err := Check(sub, cand, opts)
		if err != nil {
			return nil, nil, err
		}
		if r.Verdict == Fail {
			return cand, r, nil
		}
	}
	// Init-sequence removal.
	for j := range m.Init {
		cand := m.Clone()
		cand.Init = append(append([]Op(nil), m.Init[:j]...), m.Init[j+1:]...)
		r, err := Check(sub, cand, opts)
		if err != nil {
			return nil, nil, err
		}
		if r.Verdict == Fail {
			return cand, r, nil
		}
	}
	return nil, nil, nil
}
