// Package collections implements the concurrent data types that the paper
// evaluates: Go ports of the 13 .NET Framework 4.0 classes of Table 1 (in
// their corrected, Beta-2-like form) plus the didactic counter objects of
// Section 2.2. Every class is written against the vsync primitives so that
// the Line-Up checker can enumerate its thread interleavings.
package collections

import (
	"fmt"
	"sort"
	"strings"
)

// OK is the canonical result of void operations.
const OK = "ok"

// FailResult is the canonical result of failed try-operations, matching the
// paper's result="Fail" notation.
const FailResult = "Fail"

// Int renders an integer result canonically.
func Int(v int) string { return fmt.Sprintf("%d", v) }

// Bool renders a boolean result canonically.
func Bool(v bool) string { return fmt.Sprintf("%t", v) }

// TryInt renders the (value, ok) result of a try-operation.
func TryInt(v int, ok bool) string {
	if !ok {
		return FailResult
	}
	return Int(v)
}

// Ints renders a snapshot result (e.g. ToArray) canonically, preserving
// order: "[a b c]".
func Ints(vs []int) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = Int(v)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// IntsSorted renders an order-insensitive snapshot (e.g. a bag's ToArray)
// canonically by sorting first: "{a b c}".
func IntsSorted(vs []int) string {
	s := append([]int(nil), vs...)
	sort.Ints(s)
	parts := make([]string, len(s))
	for i, v := range s {
		parts[i] = Int(v)
	}
	return "{" + strings.Join(parts, " ") + "}"
}
