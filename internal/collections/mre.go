package collections

import (
	"lineup/internal/sched"
	"lineup/internal/vsync"
)

// ManualResetEventSlim is the corrected manual-reset event of Fig. 9. The
// state word packs the set flag into bit 0 and the waiter count into the
// remaining bits, and is manipulated with interlocked compare-and-swap, like
// the .NET implementation in which the paper found root cause A. Set wakes
// all registered waiters (and skips the wakeup entirely when the state says
// the event is already set — the optimization that the (Pre) version's CAS
// typo turns into a lost wakeup).
type ManualResetEventSlim struct {
	// state = (waiters << 1) | isSet
	state *vsync.AtomicInt
	ws    sched.WaitSet
}

// NewManualResetEventSlim constructs an event in the unset state.
func NewManualResetEventSlim(t *sched.Thread) *ManualResetEventSlim {
	e := &ManualResetEventSlim{state: vsync.NewAtomicInt(t, "MRE.state", 0)}
	e.ws.SetFootprintLoc(t.NewLoc())
	return e
}

// Set signals the event, waking all current waiters.
func (e *ManualResetEventSlim) Set(t *sched.Thread) {
	for {
		s := e.state.Load(t)
		if s&1 == 1 {
			return // already set: nobody can be waiting
		}
		if e.state.CompareAndSwap(t, s, 1) {
			if s>>1 > 0 {
				e.ws.Broadcast(t)
			}
			return
		}
	}
}

// Reset returns the event to the unset state.
func (e *ManualResetEventSlim) Reset(t *sched.Thread) {
	for {
		s := e.state.Load(t)
		if s&1 == 0 {
			return
		}
		if e.state.CompareAndSwap(t, s, s&^1) {
			return
		}
	}
}

// Wait blocks until the event is set.
func (e *ManualResetEventSlim) Wait(t *sched.Thread) {
	for {
		s := e.state.Load(t)
		if s&1 == 1 {
			return
		}
		ns := s + 2 // the (Pre) version recomputes this from a second read
		if e.state.CompareAndSwap(t, s, ns) {
			// The CAS and the park are adjacent instrumented points, so a
			// Set cannot slip in between under the scheduler's granularity;
			// ws.Wait would consume a pending signal in any case.
			e.ws.Wait(t)
			// Woken by Set (which zeroed the waiter count); re-check.
			continue
		}
	}
}

// IsSet reports whether the event is currently set.
func (e *ManualResetEventSlim) IsSet(t *sched.Thread) bool {
	return e.state.Load(t)&1 == 1
}

// WaitOne is Wait(0): it reports whether the event is set without blocking.
func (e *ManualResetEventSlim) WaitOne(t *sched.Thread) bool {
	return e.IsSet(t)
}
