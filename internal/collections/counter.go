package collections

import (
	"lineup/internal/sched"
	"lineup/internal/vsync"
)

// Counter is the correct counter of the paper's Section 2: a shared counter
// with increment, decrement, set and get, where Dec blocks while the count
// is zero (like a semaphore), matching the specification automaton of
// Fig. 3.
type Counter struct {
	mu    *vsync.Mutex
	cond  *vsync.Cond
	count *vsync.Cell[int]
}

// NewCounter constructs a counter with count zero.
func NewCounter(t *sched.Thread) *Counter {
	mu := vsync.NewMutex(t, "Counter.lock")
	return &Counter{
		mu:    mu,
		cond:  vsync.NewCond(mu),
		count: vsync.NewCell(t, "Counter.count", 0),
	}
}

// Inc increments the counter.
func (c *Counter) Inc(t *sched.Thread) {
	c.mu.Lock(t)
	c.count.Store(t, c.count.Load(t)+1)
	c.cond.Broadcast(t)
	c.mu.Unlock(t)
}

// Dec decrements the counter, blocking while it is zero.
func (c *Counter) Dec(t *sched.Thread) {
	c.mu.Lock(t)
	for c.count.Load(t) == 0 {
		c.cond.Wait(t)
	}
	c.count.Store(t, c.count.Load(t)-1)
	c.mu.Unlock(t)
}

// Set stores a new count.
func (c *Counter) Set(t *sched.Thread, v int) {
	c.mu.Lock(t)
	c.count.Store(t, v)
	c.cond.Broadcast(t)
	c.mu.Unlock(t)
}

// Get returns the current count.
func (c *Counter) Get(t *sched.Thread) int {
	c.mu.Lock(t)
	v := c.count.Load(t)
	c.mu.Unlock(t)
	return v
}

// Counter1 is the buggy counter of Section 2.2.1: Inc fails to acquire the
// lock, so concurrent increments can be lost. Its histories are complete
// but not linearizable (a get can observe a lost update).
type Counter1 struct {
	count *vsync.Cell[int]
}

// NewCounter1 constructs the buggy counter.
func NewCounter1(t *sched.Thread) *Counter1 {
	return &Counter1{count: vsync.NewCell(t, "Counter1.count", 0)}
}

// Inc increments without synchronization: count = count + 1.
func (c *Counter1) Inc(t *sched.Thread) {
	v := c.count.Load(t)
	c.count.Store(t, v+1)
}

// Get returns the current count.
func (c *Counter1) Get(t *sched.Thread) int {
	return c.count.Load(t)
}

// Counter2 is the buggy counter of Section 2.2.2 (Fig. 4): Get acquires the
// lock but never releases it, so any later operation blocks forever. All of
// its histories are linearizable under the classic Definition 1; only the
// generalized definition with stuck histories (Definition 3) exposes the
// bug.
type Counter2 struct {
	mu    *vsync.Mutex
	count *vsync.Cell[int]
}

// NewCounter2 constructs the buggy counter.
func NewCounter2(t *sched.Thread) *Counter2 {
	return &Counter2{
		mu:    vsync.NewMutex(t, "Counter2.lock"),
		count: vsync.NewCell(t, "Counter2.count", 0),
	}
}

// Inc increments under the lock (correctly).
func (c *Counter2) Inc(t *sched.Thread) {
	c.mu.Lock(t)
	c.count.Store(t, c.count.Load(t)+1)
	c.mu.Unlock(t)
}

// Get reads the count but forgets to release the lock (the seeded bug).
func (c *Counter2) Get(t *sched.Thread) int {
	c.mu.Lock(t)
	return c.count.Load(t)
	// BUG (Fig. 4): missing c.mu.Unlock(t).
}
