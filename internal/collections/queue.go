package collections

import (
	"lineup/internal/sched"
	"lineup/internal/vsync"
)

// Queue is the corrected ConcurrentQueue: a FIFO queue of integers guarded
// by a single monitor, mirroring the lock-based structure of the .NET 4.0
// CTP implementation in which the paper found the Fig. 1 bug (the Beta 2
// rewrite is lock-free and segmented; a coarse monitor keeps the observable
// semantics identical, which is all the black-box checker sees). All
// operations are linearizable at their critical sections.
type Queue struct {
	mu    *vsync.Mutex
	items *vsync.Cell[[]int]
}

// NewQueue constructs an empty queue.
func NewQueue(t *sched.Thread) *Queue {
	return &Queue{
		mu:    vsync.NewMutex(t, "Queue.lock"),
		items: vsync.NewCell(t, "Queue.items", []int(nil)),
	}
}

// Enqueue appends v to the tail.
func (q *Queue) Enqueue(t *sched.Thread, v int) {
	q.mu.Lock(t)
	q.items.Store(t, append(q.items.Load(t), v))
	q.mu.Unlock(t)
}

// TryDequeue removes and returns the head element; ok is false if the queue
// is empty.
func (q *Queue) TryDequeue(t *sched.Thread) (v int, ok bool) {
	q.mu.Lock(t)
	defer q.mu.Unlock(t)
	items := q.items.Load(t)
	if len(items) == 0 {
		return 0, false
	}
	v = items[0]
	q.items.Store(t, items[1:])
	return v, true
}

// TryPeek returns the head element without removing it; ok is false if the
// queue is empty.
func (q *Queue) TryPeek(t *sched.Thread) (v int, ok bool) {
	q.mu.Lock(t)
	defer q.mu.Unlock(t)
	items := q.items.Load(t)
	if len(items) == 0 {
		return 0, false
	}
	return items[0], true
}

// Count returns the number of elements.
func (q *Queue) Count(t *sched.Thread) int {
	q.mu.Lock(t)
	defer q.mu.Unlock(t)
	return len(q.items.Load(t))
}

// IsEmpty reports whether the queue is empty.
func (q *Queue) IsEmpty(t *sched.Thread) bool {
	return q.Count(t) == 0
}

// ToArray returns a snapshot of the elements in FIFO order.
func (q *Queue) ToArray(t *sched.Thread) []int {
	q.mu.Lock(t)
	defer q.mu.Unlock(t)
	return append([]int(nil), q.items.Load(t)...)
}
