package collections

import (
	"fmt"

	"lineup/internal/sched"
	"lineup/internal/vsync"
)

// Task completion states.
const (
	tcsPending = iota
	tcsResult
	tcsCanceled
	tcsException
)

// tcsState packs the completion status and its payload into a single word
// so that publication is one atomic CAS (like the .NET task state word).
type tcsState struct {
	status int
	value  int
}

// TaskCompletionSource is the corrected completion source: exactly one
// TrySet* operation wins; the others observe failure. Wait blocks until the
// task completes. State and payload transition together in a single
// interlocked CAS, which is what the (Pre) version's check-then-act race
// (root cause G) breaks.
type TaskCompletionSource struct {
	state *vsync.Atomic[tcsState]
	ws    sched.WaitSet
}

// NewTaskCompletionSource constructs a pending completion source.
func NewTaskCompletionSource(t *sched.Thread) *TaskCompletionSource {
	s := &TaskCompletionSource{
		state: vsync.NewAtomic(t, "TCS.state", tcsState{status: tcsPending}),
	}
	s.ws.SetFootprintLoc(t.NewLoc())
	return s
}

func (s *TaskCompletionSource) trySet(t *sched.Thread, status, v int) bool {
	if s.state.CompareAndSwap(t, tcsState{status: tcsPending}, tcsState{status: status, value: v}) {
		s.ws.Broadcast(t)
		return true
	}
	return false
}

// TrySetResult completes the task with a value, reporting whether it won.
func (s *TaskCompletionSource) TrySetResult(t *sched.Thread, v int) bool {
	return s.trySet(t, tcsResult, v)
}

// TrySetCanceled cancels the task, reporting whether it won.
func (s *TaskCompletionSource) TrySetCanceled(t *sched.Thread) bool {
	return s.trySet(t, tcsCanceled, 0)
}

// TrySetException faults the task, reporting whether it won.
func (s *TaskCompletionSource) TrySetException(t *sched.Thread) bool {
	return s.trySet(t, tcsException, 0)
}

// SetResult completes the task with a value; it reports false (the .NET
// version throws) if the task was already completed.
func (s *TaskCompletionSource) SetResult(t *sched.Thread, v int) bool {
	return s.TrySetResult(t, v)
}

// SetCanceled cancels the task; false if already completed.
func (s *TaskCompletionSource) SetCanceled(t *sched.Thread) bool {
	return s.TrySetCanceled(t)
}

// SetException faults the task; false if already completed.
func (s *TaskCompletionSource) SetException(t *sched.Thread) bool {
	return s.TrySetException(t)
}

// render formats a completion state canonically.
func (st tcsState) render() string {
	switch st.status {
	case tcsResult:
		return fmt.Sprintf("result(%d)", st.value)
	case tcsCanceled:
		return "canceled"
	case tcsException:
		return "exception"
	default:
		return "pending"
	}
}

// Wait blocks until the task completes and returns its outcome.
func (s *TaskCompletionSource) Wait(t *sched.Thread) string {
	for s.state.Load(t).status == tcsPending {
		s.ws.Wait(t)
	}
	return s.state.Load(t).render()
}

// TryResult returns the current outcome without blocking.
func (s *TaskCompletionSource) TryResult(t *sched.Thread) string {
	return s.state.Load(t).render()
}
