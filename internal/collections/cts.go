package collections

import (
	"lineup/internal/sched"
	"lineup/internal/vsync"
)

// Cancellation states: the three-valued state machine whose equality
// comparison is the third benign serializability violation of Section 5.6
// ("the current state is read and compared using a == operator; at an
// abstract level this comparison is a right-mover").
const (
	ctsActive = iota
	ctsCanceling
	ctsCanceled
)

// CancellationTokenSource is the corrected cancellation source. Cancel
// moves the state machine active → canceling → canceled and runs the
// registered callback count; IsCancellationRequested is true from the
// moment cancellation starts.
type CancellationTokenSource struct {
	state      *vsync.AtomicInt
	ncallbacks *vsync.AtomicInt // number of registered callbacks
	fired      *vsync.Cell[int] // number of callbacks that have run
	ws         sched.WaitSet
}

// NewCancellationTokenSource constructs an active source.
func NewCancellationTokenSource(t *sched.Thread) *CancellationTokenSource {
	c := &CancellationTokenSource{
		state:      vsync.NewAtomicInt(t, "CTS.state", ctsActive),
		ncallbacks: vsync.NewAtomicInt(t, "CTS.callbacks", 0),
		fired:      vsync.NewCell(t, "CTS.fired", 0),
	}
	c.ws.SetFootprintLoc(t.NewLoc())
	return c
}

// Cancel requests cancellation. The first caller runs the registered
// callbacks; concurrent callers return once cancellation is underway (they
// do not wait for callbacks, matching .NET's Cancel()).
func (c *CancellationTokenSource) Cancel(t *sched.Thread) {
	if c.state.Load(t) == ctsCanceled { // benign ==-comparison fast path
		return
	}
	if !c.state.CompareAndSwap(t, ctsActive, ctsCanceling) {
		return
	}
	// Run callbacks (modeled as counting them).
	n := c.ncallbacks.Load(t)
	c.fired.Store(t, n)
	c.state.Store(t, ctsCanceled)
	c.ws.Broadcast(t)
}

// IsCancellationRequested reports whether cancellation has been requested.
func (c *CancellationTokenSource) IsCancellationRequested(t *sched.Thread) bool {
	return c.state.Load(t) != ctsActive
}

// Register adds a callback and returns the number registered; callbacks
// registered after cancellation fire immediately (return value -1 marks
// that, matching the immediate-invocation semantics).
func (c *CancellationTokenSource) Register(t *sched.Thread) int {
	if c.state.Load(t) != ctsActive {
		return -1
	}
	return c.ncallbacks.Add(t, 1)
}

// WaitForCancel blocks until the source reaches the canceled state.
func (c *CancellationTokenSource) WaitForCancel(t *sched.Thread) {
	for c.state.Load(t) != ctsCanceled {
		c.ws.Wait(t)
	}
}

// NewLinkedTokenSource creates a source that is canceled when either parent
// is canceled (CancellationTokenSource.CreateLinkedTokenSource). The link
// is checked on observation: the child's state derives from its own flag or
// either parent, which matches the .NET semantics that linked cancellation
// propagates before the observer returns.
func NewLinkedTokenSource(t *sched.Thread, a, b *CancellationTokenSource) *LinkedTokenSource {
	return &LinkedTokenSource{
		own:     NewCancellationTokenSource(t),
		parents: []*CancellationTokenSource{a, b},
	}
}

// LinkedTokenSource is a cancellation source linked to parent sources.
type LinkedTokenSource struct {
	own     *CancellationTokenSource
	parents []*CancellationTokenSource
}

// Cancel cancels the linked source itself.
func (l *LinkedTokenSource) Cancel(t *sched.Thread) { l.own.Cancel(t) }

// IsCancellationRequested is true if the source or any parent has been
// canceled.
func (l *LinkedTokenSource) IsCancellationRequested(t *sched.Thread) bool {
	if l.own.IsCancellationRequested(t) {
		return true
	}
	for _, p := range l.parents {
		if p.IsCancellationRequested(t) {
			return true
		}
	}
	return false
}
