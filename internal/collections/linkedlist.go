package collections

import (
	"lineup/internal/sched"
	"lineup/internal/vsync"
)

// LinkedList is the ConcurrentLinkedList of Table 1: a deque of integers
// supporting insertion and removal at both ends, guarded by a single
// monitor.
type LinkedList struct {
	mu    *vsync.Mutex
	items *vsync.Cell[[]int]
}

// NewLinkedList constructs an empty list.
func NewLinkedList(t *sched.Thread) *LinkedList {
	return &LinkedList{
		mu:    vsync.NewMutex(t, "LinkedList.lock"),
		items: vsync.NewCell(t, "LinkedList.items", []int(nil)),
	}
}

// AddFirst prepends v.
func (l *LinkedList) AddFirst(t *sched.Thread, v int) {
	l.mu.Lock(t)
	defer l.mu.Unlock(t)
	l.items.Store(t, append([]int{v}, l.items.Load(t)...))
}

// AddLast appends v.
func (l *LinkedList) AddLast(t *sched.Thread, v int) {
	l.mu.Lock(t)
	defer l.mu.Unlock(t)
	l.items.Store(t, append(append([]int(nil), l.items.Load(t)...), v))
}

// RemoveFirst removes and returns the head; ok is false if the list is
// empty.
func (l *LinkedList) RemoveFirst(t *sched.Thread) (v int, ok bool) {
	l.mu.Lock(t)
	defer l.mu.Unlock(t)
	items := l.items.Load(t)
	if len(items) == 0 {
		return 0, false
	}
	l.items.Store(t, append([]int(nil), items[1:]...))
	return items[0], true
}

// RemoveLast removes and returns the tail; ok is false if the list is
// empty.
func (l *LinkedList) RemoveLast(t *sched.Thread) (v int, ok bool) {
	l.mu.Lock(t)
	defer l.mu.Unlock(t)
	items := l.items.Load(t)
	if len(items) == 0 {
		return 0, false
	}
	l.items.Store(t, append([]int(nil), items[:len(items)-1]...))
	return items[len(items)-1], true
}

// Count returns the number of elements.
func (l *LinkedList) Count(t *sched.Thread) int {
	l.mu.Lock(t)
	defer l.mu.Unlock(t)
	return len(l.items.Load(t))
}

// ToArray returns a snapshot of the elements, head first.
func (l *LinkedList) ToArray(t *sched.Thread) []int {
	l.mu.Lock(t)
	defer l.mu.Unlock(t)
	return append([]int(nil), l.items.Load(t)...)
}

// Contains reports whether v is present.
func (l *LinkedList) Contains(t *sched.Thread, v int) bool {
	l.mu.Lock(t)
	defer l.mu.Unlock(t)
	for _, x := range l.items.Load(t) {
		if x == v {
			return true
		}
	}
	return false
}

// Remove deletes the first occurrence of v, reporting whether it was found.
func (l *LinkedList) Remove(t *sched.Thread, v int) bool {
	l.mu.Lock(t)
	defer l.mu.Unlock(t)
	items := l.items.Load(t)
	for i, x := range items {
		if x == v {
			ni := append(append([]int(nil), items[:i]...), items[i+1:]...)
			l.items.Store(t, ni)
			return true
		}
	}
	return false
}
