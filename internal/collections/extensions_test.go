package collections_test

import (
	"fmt"
	"testing"

	"lineup/internal/collections"
	"lineup/internal/sched"
	"lineup/internal/vsync"
)

func TestBoundedBlockingCollection(t *testing.T) {
	seq(t, func(th *sched.Thread) {
		b := collections.NewBoundedBlockingCollection(th, 2)
		if b.BoundedCapacity(th) != 2 {
			t.Errorf("capacity = %d", b.BoundedCapacity(th))
		}
		if !b.TryAdd(th, 1) || !b.TryAdd(th, 2) {
			t.Errorf("adds under capacity failed")
		}
		if b.TryAdd(th, 3) {
			t.Errorf("TryAdd on a full collection succeeded")
		}
		if v, ok := b.TryTake(th); !ok || v != 1 {
			t.Errorf("take = %d,%v", v, ok)
		}
		if !b.TryAdd(th, 3) {
			t.Errorf("TryAdd after making room failed")
		}
	})
	// A blocked Add on a full collection is released by a Take.
	var bc *collections.BlockingCollection
	s := sched.NewScheduler(sched.Config{}, nil)
	out := s.Run(sched.Program{
		Setup: func(th *sched.Thread) {
			bc = collections.NewBoundedBlockingCollection(th, 1)
			bc.Add(th, 1)
		},
		Threads: []func(*sched.Thread){
			func(th *sched.Thread) {
				if ok := bc.Add(th, 2); !ok {
					panic("blocked add failed")
				}
			},
			func(th *sched.Thread) {
				if v, ok := bc.Take(th); !ok || v != 1 {
					panic(fmt.Sprintf("take = %d,%v", v, ok))
				}
			},
		},
	})
	if out.Stuck || out.Err != nil {
		t.Fatalf("blocked producer not released: %+v", out)
	}
}

func TestDictionaryAddOrUpdateAndValues(t *testing.T) {
	seq(t, func(th *sched.Thread) {
		d := collections.NewDictionary(th)
		if d.AddOrUpdate(th, 10, 100, 1) != 100 {
			t.Errorf("add branch broken")
		}
		if d.AddOrUpdate(th, 10, 100, 1) != 101 {
			t.Errorf("update branch broken")
		}
		d.Set(th, 20, 200)
		if got := fmt.Sprint(d.Values(th)); got != "[101 200]" {
			t.Errorf("values = %s", got)
		}
	})
}

func TestStackTryPopAll(t *testing.T) {
	seq(t, func(th *sched.Thread) {
		s := collections.NewStack(th)
		s.Push(th, 1)
		s.Push(th, 2)
		if got := fmt.Sprint(s.TryPopAll(th)); got != "[2 1]" {
			t.Errorf("popall = %s", got)
		}
		if !s.IsEmpty(th) {
			t.Errorf("not empty after popall")
		}
		if got := s.TryPopAll(th); got != nil {
			t.Errorf("popall on empty = %v", got)
		}
	})
}

func TestLinkedListContainsRemove(t *testing.T) {
	seq(t, func(th *sched.Thread) {
		l := collections.NewLinkedList(th)
		l.AddLast(th, 1)
		l.AddLast(th, 2)
		l.AddLast(th, 1)
		if !l.Contains(th, 2) || l.Contains(th, 9) {
			t.Errorf("contains broken")
		}
		if !l.Remove(th, 1) {
			t.Errorf("remove missed")
		}
		if got := fmt.Sprint(l.ToArray(th)); got != "[2 1]" {
			t.Errorf("toarray = %s", got)
		}
		if l.Remove(th, 9) {
			t.Errorf("remove of absent value succeeded")
		}
	})
}

func TestLinkedTokenSource(t *testing.T) {
	seq(t, func(th *sched.Thread) {
		a := collections.NewCancellationTokenSource(th)
		b := collections.NewCancellationTokenSource(th)
		linked := collections.NewLinkedTokenSource(th, a, b)
		if linked.IsCancellationRequested(th) {
			t.Errorf("fresh linked source canceled")
		}
		b.Cancel(th)
		if !linked.IsCancellationRequested(th) {
			t.Errorf("parent cancellation not propagated")
		}
	})
	seq(t, func(th *sched.Thread) {
		a := collections.NewCancellationTokenSource(th)
		b := collections.NewCancellationTokenSource(th)
		linked := collections.NewLinkedTokenSource(th, a, b)
		linked.Cancel(th)
		if !linked.IsCancellationRequested(th) {
			t.Errorf("own cancellation ineffective")
		}
		if a.IsCancellationRequested(th) || b.IsCancellationRequested(th) {
			t.Errorf("child cancellation leaked to parents")
		}
	})
}

func TestBarrierPostPhaseAction(t *testing.T) {
	var (
		b       *collections.Barrier
		counter *vsync.Cell[int]
	)
	s := sched.NewScheduler(sched.Config{}, nil)
	out := s.Run(sched.Program{
		Setup: func(th *sched.Thread) {
			b = collections.NewBarrier(th, 2)
			counter = vsync.NewCell(th, "postphase", 0)
			b.SetPostPhaseAction(th, counter)
		},
		Threads: []func(*sched.Thread){
			func(th *sched.Thread) { b.SignalAndWait(th); b.SignalAndWait(th) },
			func(th *sched.Thread) { b.SignalAndWait(th); b.SignalAndWait(th) },
		},
		Teardown: func(th *sched.Thread) {
			if got := b.PostPhaseCount(th); got != 2 {
				panic(fmt.Sprintf("post-phase action ran %d times, want 2", got))
			}
		},
	})
	if out.Stuck || out.Err != nil {
		t.Fatalf("outcome: %+v", out)
	}
}

// TestBoundedProducerConsumerAllSchedules: a bounded pipeline completes
// under every schedule within the preemption bound (no lost wakeups
// between producers and consumers). Unbounded exploration of this program
// is intractable (~32 instrumented points across two threads), so the test
// uses a bound of 3, which covers all single- and double-handoff races.
func TestBoundedProducerConsumerAllSchedules(t *testing.T) {
	mk := func() sched.Program {
		var bc *collections.BlockingCollection
		return sched.Program{
			Setup: func(th *sched.Thread) {
				bc = collections.NewBoundedBlockingCollection(th, 1)
			},
			Threads: []func(*sched.Thread){
				func(th *sched.Thread) {
					th.OpStart("produce")
					bc.Add(th, 1)
					bc.Add(th, 2)
					th.OpEnd("produce", "ok")
				},
				func(th *sched.Thread) {
					th.OpStart("consume")
					v1, _ := bc.Take(th)
					v2, _ := bc.Take(th)
					th.OpEnd("consume", fmt.Sprintf("%d,%d", v1, v2))
				},
			},
		}
	}
	stuck := 0
	_, err := sched.Explore(sched.ExploreConfig{PreemptionBound: 3}, mk(),
		func(o *sched.Outcome) bool {
			if o.Err != nil {
				t.Fatalf("execution error: %v", o.Err)
			}
			if o.Stuck {
				stuck++
			}
			for _, e := range o.Events {
				if e.Kind == sched.EvReturn && e.Op == "consume" && e.Result != "1,2" {
					t.Fatalf("consumer saw %q, want FIFO 1,2", e.Result)
				}
			}
			return true
		})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if stuck != 0 {
		t.Fatalf("%d schedules deadlocked the bounded pipeline", stuck)
	}
}
