package collections_test

import (
	"fmt"
	"testing"

	"lineup/internal/collections"
	"lineup/internal/sched"
)

// seq runs body as the single thread of one execution, failing the test on
// stuckness or panic.
func seq(t *testing.T, body func(th *sched.Thread)) {
	t.Helper()
	s := sched.NewScheduler(sched.Config{}, nil)
	out := s.Run(sched.Program{Threads: []func(*sched.Thread){body}})
	if out.Err != nil {
		t.Fatalf("execution error: %v", out.Err)
	}
	if out.Stuck {
		t.Fatalf("sequential execution got stuck")
	}
}

func TestQueueFIFO(t *testing.T) {
	seq(t, func(th *sched.Thread) {
		q := collections.NewQueue(th)
		if !q.IsEmpty(th) {
			t.Errorf("new queue not empty")
		}
		if _, ok := q.TryDequeue(th); ok {
			t.Errorf("dequeue from empty queue succeeded")
		}
		q.Enqueue(th, 1)
		q.Enqueue(th, 2)
		q.Enqueue(th, 3)
		if q.Count(th) != 3 {
			t.Errorf("count = %d", q.Count(th))
		}
		if v, ok := q.TryPeek(th); !ok || v != 1 {
			t.Errorf("peek = %d,%v", v, ok)
		}
		if got := fmt.Sprint(q.ToArray(th)); got != "[1 2 3]" {
			t.Errorf("toarray = %s", got)
		}
		for want := 1; want <= 3; want++ {
			v, ok := q.TryDequeue(th)
			if !ok || v != want {
				t.Errorf("dequeue = %d,%v want %d", v, ok, want)
			}
		}
		if !q.IsEmpty(th) {
			t.Errorf("queue not empty after draining")
		}
	})
}

func TestStackLIFOAndRanges(t *testing.T) {
	seq(t, func(th *sched.Thread) {
		s := collections.NewStack(th)
		s.Push(th, 1)
		s.Push(th, 2)
		s.PushRange(th, []int{3, 4}) // 4 ends on top
		if got := fmt.Sprint(s.ToArray(th)); got != "[4 3 2 1]" {
			t.Errorf("toarray = %s", got)
		}
		if v, ok := s.TryPeek(th); !ok || v != 4 {
			t.Errorf("peek = %d,%v", v, ok)
		}
		if got := fmt.Sprint(s.TryPopRange(th, 2)); got != "[4 3]" {
			t.Errorf("poprange = %s", got)
		}
		if s.Count(th) != 2 {
			t.Errorf("count = %d", s.Count(th))
		}
		if v, ok := s.TryPop(th); !ok || v != 2 {
			t.Errorf("pop = %d,%v", v, ok)
		}
		s.Clear(th)
		if !s.IsEmpty(th) {
			t.Errorf("not empty after clear")
		}
		if got := s.TryPopRange(th, 3); got != nil {
			t.Errorf("poprange on empty = %v", got)
		}
	})
}

func TestStackSnapshotImmutableUnderPop(t *testing.T) {
	// The linearizability of Count/ToArray hinges on popped nodes never
	// being mutated: a snapshot taken before pops still sees the old state.
	seq(t, func(th *sched.Thread) {
		s := collections.NewStack(th)
		s.Push(th, 1)
		s.Push(th, 2)
		before := s.ToArray(th)
		s.TryPop(th)
		s.TryPop(th)
		if got := fmt.Sprint(before); got != "[2 1]" {
			t.Errorf("snapshot mutated: %s", got)
		}
	})
}

func TestDictionaryBasics(t *testing.T) {
	seq(t, func(th *sched.Thread) {
		d := collections.NewDictionary(th)
		if !d.TryAdd(th, 10, 100) || d.TryAdd(th, 10, 101) {
			t.Errorf("TryAdd semantics broken")
		}
		if v, ok := d.TryGetValue(th, 10); !ok || v != 100 {
			t.Errorf("get = %d,%v", v, ok)
		}
		if d.GetOrAdd(th, 10, 999) != 100 {
			t.Errorf("GetOrAdd overwrote")
		}
		if d.GetOrAdd(th, 20, 200) != 200 {
			t.Errorf("GetOrAdd missed")
		}
		if !d.TryUpdate(th, 10, 111, 100) || d.TryUpdate(th, 10, 112, 100) {
			t.Errorf("TryUpdate comparand semantics broken")
		}
		d.Set(th, 30, 300)
		if d.Count(th) != 3 {
			t.Errorf("count = %d", d.Count(th))
		}
		if got := fmt.Sprint(d.Keys(th)); got != "[10 20 30]" {
			t.Errorf("keys = %s", got)
		}
		if v, ok := d.TryRemove(th, 20); !ok || v != 200 {
			t.Errorf("remove = %d,%v", v, ok)
		}
		if d.ContainsKey(th, 20) {
			t.Errorf("removed key still present")
		}
		d.Clear(th)
		if !d.IsEmpty(th) {
			t.Errorf("not empty after clear")
		}
	})
}

func TestBagOwnListLIFOAndSteal(t *testing.T) {
	seq(t, func(th *sched.Thread) {
		b := collections.NewBag(th)
		b.Add(th, 1)
		b.Add(th, 2)
		if v, ok := b.TryPeek(th); !ok || v != 2 {
			t.Errorf("peek = %d,%v (own list is LIFO)", v, ok)
		}
		if v, ok := b.TryTake(th); !ok || v != 2 {
			t.Errorf("take = %d,%v", v, ok)
		}
		if b.Count(th) != 1 {
			t.Errorf("count = %d", b.Count(th))
		}
		if got := fmt.Sprint(b.ToArray(th)); got != "[1]" {
			t.Errorf("toarray = %s", got)
		}
		b.TryTake(th)
		if !b.IsEmpty(th) {
			t.Errorf("not empty")
		}
		if _, ok := b.TryTake(th); ok {
			t.Errorf("take from empty bag succeeded")
		}
	})
}

func TestBagStealsOldestFromOtherThread(t *testing.T) {
	var bag *collections.Bag
	s := sched.NewScheduler(sched.Config{}, nil)
	out := s.Run(sched.Program{
		Setup: func(th *sched.Thread) {
			bag = collections.NewBag(th)
			bag.Add(th, 7) // lands in the setup thread's slot
			bag.Add(th, 8)
		},
		Threads: []func(*sched.Thread){
			func(th *sched.Thread) {
				if v, ok := bag.TryTake(th); !ok || v != 7 {
					panic(fmt.Sprintf("steal = %d,%v; want oldest (7)", v, ok))
				}
			},
		},
	})
	if out.Err != nil || out.Stuck {
		t.Fatalf("outcome: %+v", out)
	}
}

func TestSemaphoreCountingAndBlocking(t *testing.T) {
	seq(t, func(th *sched.Thread) {
		s := collections.NewSemaphoreSlim(th, 2)
		if s.CurrentCount(th) != 2 {
			t.Errorf("count = %d", s.CurrentCount(th))
		}
		s.Wait(th)
		if !s.WaitZero(th) {
			t.Errorf("Wait(0) with a permit failed")
		}
		if s.WaitZero(th) {
			t.Errorf("Wait(0) without permits succeeded")
		}
		if prev := s.Release(th, 2); prev != 0 {
			t.Errorf("release returned %d", prev)
		}
		if s.CurrentCount(th) != 2 {
			t.Errorf("count = %d", s.CurrentCount(th))
		}
	})
	// A Wait with no permits blocks; a Release lets it through.
	var sem *collections.SemaphoreSlim
	s := sched.NewScheduler(sched.Config{}, nil)
	out := s.Run(sched.Program{
		Setup: func(th *sched.Thread) { sem = collections.NewSemaphoreSlim(th, 0) },
		Threads: []func(*sched.Thread){
			func(th *sched.Thread) { sem.Wait(th) },
			func(th *sched.Thread) { sem.Release(th, 1) },
		},
	})
	if out.Stuck || out.Err != nil {
		t.Fatalf("waiter not released: %+v", out)
	}
}

func TestMRESetResetWait(t *testing.T) {
	seq(t, func(th *sched.Thread) {
		e := collections.NewManualResetEventSlim(th)
		if e.IsSet(th) || e.WaitOne(th) {
			t.Errorf("new event is set")
		}
		e.Set(th)
		if !e.IsSet(th) {
			t.Errorf("set event not set")
		}
		e.Wait(th) // returns immediately
		e.Reset(th)
		if e.IsSet(th) {
			t.Errorf("reset event still set")
		}
	})
	// A blocked Wait is released by Set.
	var mre *collections.ManualResetEventSlim
	s := sched.NewScheduler(sched.Config{}, nil)
	out := s.Run(sched.Program{
		Setup: func(th *sched.Thread) { mre = collections.NewManualResetEventSlim(th) },
		Threads: []func(*sched.Thread){
			func(th *sched.Thread) { mre.Wait(th) },
			func(th *sched.Thread) { mre.Set(th) },
		},
	})
	if out.Stuck || out.Err != nil {
		t.Fatalf("waiter not released: %+v", out)
	}
}

func TestCountdownEvent(t *testing.T) {
	seq(t, func(th *sched.Thread) {
		c := collections.NewCountdownEvent(th, 2)
		if c.IsSet(th) || c.WaitZero(th) {
			t.Errorf("fresh event set")
		}
		if !c.Signal(th, 1) || c.CurrentCount(th) != 1 {
			t.Errorf("signal broken")
		}
		if c.Signal(th, 2) {
			t.Errorf("over-signal succeeded")
		}
		if !c.AddCount(th, 1) || c.CurrentCount(th) != 2 {
			t.Errorf("addcount broken")
		}
		if !c.Signal(th, 2) || !c.IsSet(th) {
			t.Errorf("final signal broken")
		}
		c.Wait(th) // returns immediately once set
		if c.TryAddCount(th, 1) {
			t.Errorf("TryAddCount after set succeeded")
		}
	})
}

func TestLazyMemoizes(t *testing.T) {
	seq(t, func(th *sched.Thread) {
		l := collections.NewLazy(th)
		if l.IsValueCreated(th) {
			t.Errorf("fresh lazy created")
		}
		if l.ToString(th) != "unset" {
			t.Errorf("tostring = %s", l.ToString(th))
		}
		v1 := l.Value(th)
		v2 := l.Value(th)
		if v1 != v2 || v1 != 101 {
			t.Errorf("values %d, %d; factory must run once", v1, v2)
		}
		if !l.IsValueCreated(th) || l.ToString(th) != "101" {
			t.Errorf("post-creation state broken")
		}
	})
}

func TestTCSTransitions(t *testing.T) {
	seq(t, func(th *sched.Thread) {
		s := collections.NewTaskCompletionSource(th)
		if s.TryResult(th) != "pending" {
			t.Errorf("fresh source not pending")
		}
		if !s.TrySetResult(th, 10) {
			t.Errorf("first set failed")
		}
		if s.TrySetResult(th, 20) || s.TrySetCanceled(th) || s.TrySetException(th) {
			t.Errorf("second completion succeeded")
		}
		if s.Wait(th) != "result(10)" || s.TryResult(th) != "result(10)" {
			t.Errorf("result = %s", s.TryResult(th))
		}
	})
	seq(t, func(th *sched.Thread) {
		s := collections.NewTaskCompletionSource(th)
		if !s.SetCanceled(th) || s.TryResult(th) != "canceled" {
			t.Errorf("cancel broken")
		}
	})
}

func TestCTS(t *testing.T) {
	seq(t, func(th *sched.Thread) {
		c := collections.NewCancellationTokenSource(th)
		if c.IsCancellationRequested(th) {
			t.Errorf("fresh source canceled")
		}
		if c.Register(th) != 1 || c.Register(th) != 2 {
			t.Errorf("register count broken")
		}
		c.Cancel(th)
		if !c.IsCancellationRequested(th) {
			t.Errorf("cancel ineffective")
		}
		c.Cancel(th) // idempotent
		if c.Register(th) != -1 {
			t.Errorf("register after cancel should fire immediately")
		}
		c.WaitForCancel(th) // returns immediately
	})
}

func TestBarrierPhases(t *testing.T) {
	var b *collections.Barrier
	s := sched.NewScheduler(sched.Config{}, nil)
	out := s.Run(sched.Program{
		Setup: func(th *sched.Thread) { b = collections.NewBarrier(th, 2) },
		Threads: []func(*sched.Thread){
			func(th *sched.Thread) { b.SignalAndWait(th); b.SignalAndWait(th) },
			func(th *sched.Thread) { b.SignalAndWait(th); b.SignalAndWait(th) },
		},
		Teardown: func(th *sched.Thread) {
			if got := b.CurrentPhaseNumber(th); got != 2 {
				panic(fmt.Sprintf("phase = %d, want 2", got))
			}
		},
	})
	if out.Stuck || out.Err != nil {
		t.Fatalf("barrier outcome: %+v", out)
	}
	seq(t, func(th *sched.Thread) {
		b := collections.NewBarrier(th, 2)
		if b.ParticipantCount(th) != 2 || b.ParticipantsRemaining(th) != 2 {
			t.Errorf("fresh barrier counts broken")
		}
		if b.AddParticipant(th) != 0 || b.ParticipantCount(th) != 3 {
			t.Errorf("add participant broken")
		}
		if !b.RemoveParticipant(th) || b.ParticipantCount(th) != 2 {
			t.Errorf("remove participant broken")
		}
	})
	// Removing the last unarrived participant completes the phase.
	var b2 *collections.Barrier
	s2 := sched.NewScheduler(sched.Config{}, nil)
	out2 := s2.Run(sched.Program{
		Setup: func(th *sched.Thread) { b2 = collections.NewBarrier(th, 2) },
		Threads: []func(*sched.Thread){
			func(th *sched.Thread) { b2.SignalAndWait(th) },
			func(th *sched.Thread) { b2.RemoveParticipant(th) },
		},
	})
	if out2.Stuck || out2.Err != nil {
		t.Fatalf("remove-completes-phase outcome: %+v", out2)
	}
}

func TestLinkedListDeque(t *testing.T) {
	seq(t, func(th *sched.Thread) {
		l := collections.NewLinkedList(th)
		l.AddLast(th, 2)
		l.AddFirst(th, 1)
		l.AddLast(th, 3)
		if got := fmt.Sprint(l.ToArray(th)); got != "[1 2 3]" {
			t.Errorf("toarray = %s", got)
		}
		if v, ok := l.RemoveFirst(th); !ok || v != 1 {
			t.Errorf("removefirst = %d,%v", v, ok)
		}
		if v, ok := l.RemoveLast(th); !ok || v != 3 {
			t.Errorf("removelast = %d,%v", v, ok)
		}
		if l.Count(th) != 1 {
			t.Errorf("count = %d", l.Count(th))
		}
		l.RemoveFirst(th)
		if _, ok := l.RemoveLast(th); ok {
			t.Errorf("remove from empty list succeeded")
		}
	})
}

func TestBlockingCollectionBasics(t *testing.T) {
	seq(t, func(th *sched.Thread) {
		b := collections.NewBlockingCollection(th)
		if !b.TryAdd(th, 1) || !b.Add(th, 2) {
			t.Errorf("adds failed")
		}
		if b.Count(th) != 2 {
			t.Errorf("count = %d", b.Count(th))
		}
		if got := fmt.Sprint(b.ToArray(th)); got != "[1 2]" {
			t.Errorf("toarray = %s", got)
		}
		if v, ok := b.TryTake(th); !ok || v != 1 {
			t.Errorf("trytake = %d,%v", v, ok)
		}
		if v, ok := b.Take(th); !ok || v != 2 {
			t.Errorf("take = %d,%v", v, ok)
		}
		if _, ok := b.TryTake(th); ok {
			t.Errorf("take from empty succeeded")
		}
		if b.IsAddingCompleted(th) || b.IsCompleted(th) {
			t.Errorf("completed too early")
		}
		b.CompleteAdding(th)
		if !b.IsAddingCompleted(th) || !b.IsCompleted(th) {
			t.Errorf("completion flags broken")
		}
		if b.Add(th, 3) || b.TryAdd(th, 3) {
			t.Errorf("add after completion succeeded")
		}
		if _, ok := b.Take(th); ok {
			t.Errorf("take on completed empty collection should fail, not block")
		}
	})
	// A blocked Take is released by an Add.
	var bc *collections.BlockingCollection
	s := sched.NewScheduler(sched.Config{}, nil)
	out := s.Run(sched.Program{
		Setup: func(th *sched.Thread) { bc = collections.NewBlockingCollection(th) },
		Threads: []func(*sched.Thread){
			func(th *sched.Thread) {
				if v, ok := bc.Take(th); !ok || v != 9 {
					panic("take got wrong value")
				}
			},
			func(th *sched.Thread) { bc.Add(th, 9) },
		},
	})
	if out.Stuck || out.Err != nil {
		t.Fatalf("take not released by add: %+v", out)
	}
}

func TestCounterSequential(t *testing.T) {
	seq(t, func(th *sched.Thread) {
		c := collections.NewCounter(th)
		c.Inc(th)
		c.Inc(th)
		if c.Get(th) != 2 {
			t.Errorf("get = %d", c.Get(th))
		}
		c.Dec(th)
		if c.Get(th) != 1 {
			t.Errorf("get = %d", c.Get(th))
		}
		c.Set(th, 5)
		if c.Get(th) != 5 {
			t.Errorf("get = %d", c.Get(th))
		}
	})
}
