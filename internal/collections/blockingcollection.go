package collections

import (
	"lineup/internal/sched"
	"lineup/internal/vsync"
)

// BlockingCollection is the bounded producer/consumer wrapper of Table 1.
// Items live in a FIFO list under a monitor; Take blocks while the
// collection is empty; CompleteAdding closes the collection for producers.
//
// Two behaviors are deliberately preserved from the .NET class because the
// paper classifies them as intentional rather than bugs (Sections 5.2.2 and
// 5.3) — the developers "decided instead to change the official
// documentation":
//
//   - Root causes I and J (intentional nondeterminism): the element count
//     is maintained in a separate interlocked counter that is updated
//     *after* the monitor is released, as a timing optimization. Count can
//     therefore report 0 while the collection is observably non-empty, and
//     TryTake's count-based fast path can fail while an element is present.
//
//   - Root cause K (intentional nonlinearizability): CompleteAdding only
//     publishes the completion flag; its effect on a blocked Take
//     materializes later (in .NET, on an asynchronous path well after
//     CompleteAdding returned — here the wakeup is simply not delivered
//     within the operation, see DESIGN.md).
type BlockingCollection struct {
	mu        *vsync.Mutex
	cond      *vsync.Cond
	items     *vsync.Cell[[]int]
	count     *vsync.AtomicInt // updated outside the monitor (I, J)
	completed *vsync.Atomic[bool]
	capacity  int // 0 = unbounded
}

// NewBlockingCollection constructs an empty, unbounded collection.
func NewBlockingCollection(t *sched.Thread) *BlockingCollection {
	return NewBoundedBlockingCollection(t, 0)
}

// NewBoundedBlockingCollection constructs a collection with the given
// capacity (0 = unbounded). On a bounded collection Add blocks while the
// collection is full, like the .NET boundedCapacity constructor.
func NewBoundedBlockingCollection(t *sched.Thread, capacity int) *BlockingCollection {
	mu := vsync.NewMutex(t, "BlockingCollection.lock")
	return &BlockingCollection{
		mu:        mu,
		cond:      vsync.NewCond(mu),
		items:     vsync.NewCell(t, "BlockingCollection.items", []int(nil)),
		count:     vsync.NewAtomicInt(t, "BlockingCollection.count", 0),
		completed: vsync.NewAtomic(t, "BlockingCollection.completed", false),
		capacity:  capacity,
	}
}

// BoundedCapacity returns the configured capacity (0 = unbounded).
func (b *BlockingCollection) BoundedCapacity(t *sched.Thread) int { return b.capacity }

// Add appends v, blocking while a bounded collection is full; it reports
// false if adding has been completed (the .NET version throws). The count
// update happens after the monitor is released.
func (b *BlockingCollection) Add(t *sched.Thread, v int) bool {
	if b.completed.Load(t) {
		return false
	}
	b.mu.Lock(t)
	for b.capacity > 0 && len(b.items.Load(t)) >= b.capacity {
		if b.completed.Load(t) {
			b.mu.Unlock(t)
			return false
		}
		b.cond.Wait(t)
	}
	b.items.Store(t, append(b.items.Load(t), v))
	b.cond.Broadcast(t)
	b.mu.Unlock(t)
	b.count.Add(t, 1) // deliberate: outside the lock (root causes I, J)
	return true
}

// TryAdd appends v only if the collection has room right now; false if
// full or adding has been completed.
func (b *BlockingCollection) TryAdd(t *sched.Thread, v int) bool {
	if b.completed.Load(t) {
		return false
	}
	b.mu.Lock(t)
	if b.capacity > 0 && len(b.items.Load(t)) >= b.capacity {
		b.mu.Unlock(t)
		return false
	}
	b.items.Store(t, append(b.items.Load(t), v))
	b.cond.Broadcast(t)
	b.mu.Unlock(t)
	b.count.Add(t, 1) // deliberate: outside the lock (root causes I, J)
	return true
}

// Take removes and returns the head element, blocking while the collection
// is empty. It returns ok=false only if adding was completed and the
// collection drained — but note root cause K: a Take already blocked when
// CompleteAdding runs is not woken by it.
func (b *BlockingCollection) Take(t *sched.Thread) (v int, ok bool) {
	b.mu.Lock(t)
	for {
		items := b.items.Load(t)
		if len(items) > 0 {
			v = items[0]
			b.items.Store(t, items[1:])
			b.cond.Broadcast(t) // wake producers blocked on a bounded collection
			b.mu.Unlock(t)
			b.count.Add(t, -1)
			return v, true
		}
		if b.completed.Load(t) {
			b.mu.Unlock(t)
			return 0, false
		}
		b.cond.Wait(t)
	}
}

// TryTake removes and returns the head element without blocking. The
// count-based fast path is the source of root cause J.
func (b *BlockingCollection) TryTake(t *sched.Thread) (v int, ok bool) {
	if b.count.Load(t) == 0 { // deliberate stale fast path (root cause J)
		return 0, false
	}
	b.mu.Lock(t)
	items := b.items.Load(t)
	if len(items) == 0 {
		b.mu.Unlock(t)
		return 0, false
	}
	b.items.Store(t, items[1:])
	b.cond.Broadcast(t) // wake producers blocked on a bounded collection
	b.mu.Unlock(t)
	b.count.Add(t, -1)
	return items[0], true
}

// Count returns the interlocked element counter (root cause I: it lags the
// true contents).
func (b *BlockingCollection) Count(t *sched.Thread) int {
	return b.count.Load(t)
}

// ToArray returns a monitor-protected snapshot in FIFO order.
func (b *BlockingCollection) ToArray(t *sched.Thread) []int {
	b.mu.Lock(t)
	defer b.mu.Unlock(t)
	return append([]int(nil), b.items.Load(t)...)
}

// CompleteAdding closes the collection for producers. Deliberately (root
// cause K) it does not wake already-blocked takers; see the type comment.
func (b *BlockingCollection) CompleteAdding(t *sched.Thread) {
	b.completed.Store(t, true)
}

// IsAddingCompleted reports whether CompleteAdding has been called.
func (b *BlockingCollection) IsAddingCompleted(t *sched.Thread) bool {
	return b.completed.Load(t)
}

// IsCompleted reports whether adding is completed and the collection is
// empty.
func (b *BlockingCollection) IsCompleted(t *sched.Thread) bool {
	if !b.completed.Load(t) {
		return false
	}
	return b.count.Load(t) == 0
}
