package collections

import (
	"lineup/internal/sched"
	"lineup/internal/vsync"
)

// SemaphoreSlim is the corrected semaphore: Wait blocks while the count is
// zero, Release adds permits. WaitZero is the non-blocking Wait(0) overload.
//
// WaitZero and CurrentCount read the count with an unsynchronized fast path
// before (or instead of) taking the lock — the "timing optimization
// (similar to double-checked locking) that does not affect correctness, but
// breaks serializability" of Section 5.6, and one of the benign data races
// the paper's race-detection comparison found.
type SemaphoreSlim struct {
	mu    *vsync.Mutex
	cond  *vsync.Cond
	count *vsync.Cell[int]
}

// NewSemaphoreSlim constructs a semaphore with the given initial count.
func NewSemaphoreSlim(t *sched.Thread, initial int) *SemaphoreSlim {
	mu := vsync.NewMutex(t, "SemaphoreSlim.lock")
	return &SemaphoreSlim{
		mu:    mu,
		cond:  vsync.NewCond(mu),
		count: vsync.NewCell(t, "SemaphoreSlim.count", initial),
	}
}

// Wait acquires one permit, blocking while none is available.
func (s *SemaphoreSlim) Wait(t *sched.Thread) {
	s.mu.Lock(t)
	for s.count.Load(t) == 0 {
		s.cond.Wait(t)
	}
	s.count.Store(t, s.count.Load(t)-1)
	s.mu.Unlock(t)
}

// WaitZero is Wait(0): it acquires a permit only if one is immediately
// available. The unsynchronized fast-path read is a benign data race.
func (s *SemaphoreSlim) WaitZero(t *sched.Thread) bool {
	if s.count.Load(t) == 0 { // benign race: double-checked fast path
		return false
	}
	s.mu.Lock(t)
	defer s.mu.Unlock(t)
	if s.count.Load(t) == 0 {
		return false
	}
	s.count.Store(t, s.count.Load(t)-1)
	return true
}

// Release returns n permits and wakes waiters.
func (s *SemaphoreSlim) Release(t *sched.Thread, n int) int {
	s.mu.Lock(t)
	prev := s.count.Load(t)
	s.count.Store(t, prev+n)
	s.cond.Broadcast(t)
	s.mu.Unlock(t)
	return prev
}

// CurrentCount returns the number of available permits (benign racy read,
// like the .NET property).
func (s *SemaphoreSlim) CurrentCount(t *sched.Thread) int {
	return s.count.Load(t)
}
