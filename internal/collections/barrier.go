package collections

import (
	"lineup/internal/sched"
	"lineup/internal/vsync"
)

// Barrier is the classic nonlinearizable class of the paper (root cause L
// of Table 2, Section 5.3): SignalAndWait blocks each arriving thread until
// every participant has arrived, "a behavior that is not equivalent to any
// serial execution". The implementation itself is correct; Line-Up flags it
// because no serial witness for two mutually-releasing SignalAndWait calls
// can exist.
type Barrier struct {
	mu           *vsync.Mutex
	cond         *vsync.Cond
	participants *vsync.Cell[int]
	arrived      *vsync.Cell[int]
	phase        *vsync.Cell[int]
	postPhase    *vsync.Cell[int] // optional post-phase action counter
}

// NewBarrier constructs a barrier for the given number of participants.
func NewBarrier(t *sched.Thread, participants int) *Barrier {
	mu := vsync.NewMutex(t, "Barrier.lock")
	return &Barrier{
		mu:           mu,
		cond:         vsync.NewCond(mu),
		participants: vsync.NewCell(t, "Barrier.participants", participants),
		arrived:      vsync.NewCell(t, "Barrier.arrived", 0),
		phase:        vsync.NewCell(t, "Barrier.phase", 0),
	}
}

// SignalAndWait signals arrival and blocks until all participants of the
// current phase have arrived.
func (b *Barrier) SignalAndWait(t *sched.Thread) {
	b.mu.Lock(t)
	arrived := b.arrived.Load(t) + 1
	if arrived >= b.participants.Load(t) {
		// Last arrival: run the post-phase action, advance the phase, and
		// release everyone.
		if b.postPhase != nil {
			b.postPhase.Store(t, b.postPhase.Load(t)+1)
		}
		b.arrived.Store(t, 0)
		b.phase.Store(t, b.phase.Load(t)+1)
		b.cond.Broadcast(t)
		b.mu.Unlock(t)
		return
	}
	b.arrived.Store(t, arrived)
	gen := b.phase.Load(t)
	for b.phase.Load(t) == gen {
		b.cond.Wait(t)
	}
	b.mu.Unlock(t)
}

// AddParticipant registers one more participant and returns the current
// phase number.
func (b *Barrier) AddParticipant(t *sched.Thread) int {
	b.mu.Lock(t)
	defer b.mu.Unlock(t)
	b.participants.Store(t, b.participants.Load(t)+1)
	return b.phase.Load(t)
}

// RemoveParticipant deregisters one participant; it reports false if there
// are none to remove. Removing a participant can complete the current
// phase.
func (b *Barrier) RemoveParticipant(t *sched.Thread) bool {
	b.mu.Lock(t)
	defer b.mu.Unlock(t)
	p := b.participants.Load(t)
	if p <= 0 {
		return false
	}
	b.participants.Store(t, p-1)
	if p-1 > 0 && b.arrived.Load(t) >= p-1 {
		b.arrived.Store(t, 0)
		b.phase.Store(t, b.phase.Load(t)+1)
		b.cond.Broadcast(t)
	}
	return true
}

// ParticipantCount returns the number of registered participants.
func (b *Barrier) ParticipantCount(t *sched.Thread) int {
	b.mu.Lock(t)
	defer b.mu.Unlock(t)
	return b.participants.Load(t)
}

// ParticipantsRemaining returns how many participants have not yet arrived
// in the current phase.
func (b *Barrier) ParticipantsRemaining(t *sched.Thread) int {
	b.mu.Lock(t)
	defer b.mu.Unlock(t)
	return b.participants.Load(t) - b.arrived.Load(t)
}

// CurrentPhaseNumber returns the phase counter.
func (b *Barrier) CurrentPhaseNumber(t *sched.Thread) int {
	b.mu.Lock(t)
	defer b.mu.Unlock(t)
	return b.phase.Load(t)
}

// SetPostPhaseAction registers a counter cell that the last-arriving
// participant increments before releasing the phase, modeling the .NET
// post-phase action callback. It must be called before any SignalAndWait.
func (b *Barrier) SetPostPhaseAction(t *sched.Thread, counter *vsync.Cell[int]) {
	b.mu.Lock(t)
	defer b.mu.Unlock(t)
	b.postPhase = counter
}

// PostPhaseCount returns how many times the post-phase action has run.
func (b *Barrier) PostPhaseCount(t *sched.Thread) int {
	b.mu.Lock(t)
	defer b.mu.Unlock(t)
	if b.postPhase == nil {
		return 0
	}
	return b.postPhase.Load(t)
}
