package collections

import (
	"sort"

	"lineup/internal/sched"
	"lineup/internal/vsync"
)

// dictStripes is the number of lock stripes of the dictionary; kept tiny so
// that small tests still exercise cross-stripe interleavings.
const dictStripes = 4

// Dictionary is the corrected ConcurrentDictionary: a striped-lock hash map
// from int keys to int values. Single-key operations lock the key's stripe;
// whole-map operations (Count, IsEmpty, Clear, ToArray) acquire all stripes
// in ascending order, which makes them atomic snapshots (the Beta 2 .NET
// implementation does the same).
type Dictionary struct {
	locks   [dictStripes]*vsync.Mutex
	buckets [dictStripes]*vsync.Cell[map[int]int]
}

// NewDictionary constructs an empty dictionary.
func NewDictionary(t *sched.Thread) *Dictionary {
	d := &Dictionary{}
	for i := 0; i < dictStripes; i++ {
		d.locks[i] = vsync.NewMutex(t, "Dictionary.lock")
		d.buckets[i] = vsync.NewCell(t, "Dictionary.bucket", map[int]int{})
	}
	return d
}

func (d *Dictionary) stripe(key int) int {
	s := key % dictStripes
	if s < 0 {
		s += dictStripes
	}
	return s
}

// TryAdd inserts (key, value) and reports false if the key already exists.
func (d *Dictionary) TryAdd(t *sched.Thread, key, value int) bool {
	s := d.stripe(key)
	d.locks[s].Lock(t)
	defer d.locks[s].Unlock(t)
	b := d.buckets[s].Load(t)
	if _, exists := b[key]; exists {
		return false
	}
	nb := copyMap(b)
	nb[key] = value
	d.buckets[s].Store(t, nb)
	return true
}

// TryRemove deletes key and returns its value; ok is false if absent.
func (d *Dictionary) TryRemove(t *sched.Thread, key int) (value int, ok bool) {
	s := d.stripe(key)
	d.locks[s].Lock(t)
	defer d.locks[s].Unlock(t)
	b := d.buckets[s].Load(t)
	value, ok = b[key]
	if !ok {
		return 0, false
	}
	nb := copyMap(b)
	delete(nb, key)
	d.buckets[s].Store(t, nb)
	return value, true
}

// TryGetValue returns the value of key; ok is false if absent.
func (d *Dictionary) TryGetValue(t *sched.Thread, key int) (value int, ok bool) {
	s := d.stripe(key)
	d.locks[s].Lock(t)
	defer d.locks[s].Unlock(t)
	value, ok = d.buckets[s].Load(t)[key]
	return value, ok
}

// TryUpdate replaces key's value with newValue if it currently equals
// comparand, reporting whether it did.
func (d *Dictionary) TryUpdate(t *sched.Thread, key, newValue, comparand int) bool {
	s := d.stripe(key)
	d.locks[s].Lock(t)
	defer d.locks[s].Unlock(t)
	b := d.buckets[s].Load(t)
	cur, ok := b[key]
	if !ok || cur != comparand {
		return false
	}
	nb := copyMap(b)
	nb[key] = newValue
	d.buckets[s].Store(t, nb)
	return true
}

// Set stores value under key unconditionally (the this[key] = value
// indexer).
func (d *Dictionary) Set(t *sched.Thread, key, value int) {
	s := d.stripe(key)
	d.locks[s].Lock(t)
	defer d.locks[s].Unlock(t)
	nb := copyMap(d.buckets[s].Load(t))
	nb[key] = value
	d.buckets[s].Store(t, nb)
}

// GetOrAdd returns the existing value of key, or stores and returns value.
func (d *Dictionary) GetOrAdd(t *sched.Thread, key, value int) int {
	s := d.stripe(key)
	d.locks[s].Lock(t)
	defer d.locks[s].Unlock(t)
	b := d.buckets[s].Load(t)
	if cur, ok := b[key]; ok {
		return cur
	}
	nb := copyMap(b)
	nb[key] = value
	d.buckets[s].Store(t, nb)
	return value
}

// ContainsKey reports whether key is present.
func (d *Dictionary) ContainsKey(t *sched.Thread, key int) bool {
	_, ok := d.TryGetValue(t, key)
	return ok
}

// lockAll acquires every stripe in ascending order (deadlock-free).
func (d *Dictionary) lockAll(t *sched.Thread) {
	for i := 0; i < dictStripes; i++ {
		d.locks[i].Lock(t)
	}
}

func (d *Dictionary) unlockAll(t *sched.Thread) {
	for i := dictStripes - 1; i >= 0; i-- {
		d.locks[i].Unlock(t)
	}
}

// Count returns the number of entries (full-lock snapshot).
func (d *Dictionary) Count(t *sched.Thread) int {
	d.lockAll(t)
	defer d.unlockAll(t)
	n := 0
	for i := 0; i < dictStripes; i++ {
		n += len(d.buckets[i].Load(t))
	}
	return n
}

// IsEmpty reports whether the dictionary has no entries.
func (d *Dictionary) IsEmpty(t *sched.Thread) bool {
	return d.Count(t) == 0
}

// Clear removes all entries atomically.
func (d *Dictionary) Clear(t *sched.Thread) {
	d.lockAll(t)
	defer d.unlockAll(t)
	for i := 0; i < dictStripes; i++ {
		d.buckets[i].Store(t, map[int]int{})
	}
}

// Keys returns a sorted snapshot of the keys.
func (d *Dictionary) Keys(t *sched.Thread) []int {
	d.lockAll(t)
	defer d.unlockAll(t)
	var keys []int
	for i := 0; i < dictStripes; i++ {
		for k := range d.buckets[i].Load(t) {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	return keys
}

func copyMap(m map[int]int) map[int]int {
	nm := make(map[int]int, len(m)+1)
	for k, v := range m {
		nm[k] = v
	}
	return nm
}

// AddOrUpdate stores addValue if the key is absent, or updates the present
// value with updated = old + delta (modeling the .NET update factory),
// returning the value now stored.
func (d *Dictionary) AddOrUpdate(t *sched.Thread, key, addValue, delta int) int {
	s := d.stripe(key)
	d.locks[s].Lock(t)
	defer d.locks[s].Unlock(t)
	b := d.buckets[s].Load(t)
	nb := copyMap(b)
	v, ok := b[key]
	if ok {
		nb[key] = v + delta
	} else {
		nb[key] = addValue
	}
	d.buckets[s].Store(t, nb)
	return nb[key]
}

// Values returns the values sorted by key (full-lock snapshot).
func (d *Dictionary) Values(t *sched.Thread) []int {
	d.lockAll(t)
	defer d.unlockAll(t)
	type kv struct{ k, v int }
	var all []kv
	for i := 0; i < dictStripes; i++ {
		for k, v := range d.buckets[i].Load(t) {
			all = append(all, kv{k, v})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].k < all[j].k })
	out := make([]int, len(all))
	for i, e := range all {
		out[i] = e.v
	}
	return out
}
