package collections

import (
	"fmt"

	"lineup/internal/sched"
	"lineup/internal/vsync"
)

// Lazy is the corrected lazy-initialization cell. The value factory has an
// observable side effect (it returns 100 + the number of times it has run),
// so executing it more than once — the seeded defect of the (Pre) version,
// root cause F — produces results no serial execution can justify. The
// corrected version publishes the value under a lock with a double-checked
// fast path (another benign race for the Section 5.6 comparison).
type Lazy struct {
	mu      *vsync.Mutex
	created *vsync.Cell[bool]
	value   *vsync.Cell[int]
	calls   *vsync.Cell[int]
}

// NewLazy constructs an uninitialized lazy cell.
func NewLazy(t *sched.Thread) *Lazy {
	return &Lazy{
		mu:      vsync.NewMutex(t, "Lazy.lock"),
		created: vsync.NewCell(t, "Lazy.created", false),
		value:   vsync.NewCell(t, "Lazy.value", 0),
		calls:   vsync.NewCell(t, "Lazy.calls", 0),
	}
}

// factory is the observable value factory: each run returns a distinct
// value.
func (l *Lazy) factory(t *sched.Thread) int {
	n := l.calls.Load(t) + 1
	l.calls.Store(t, n)
	return 100 + n
}

// Value returns the lazily created value, running the factory at most once.
func (l *Lazy) Value(t *sched.Thread) int {
	if l.created.Load(t) { // benign race: double-checked fast path
		return l.value.Load(t)
	}
	l.mu.Lock(t)
	defer l.mu.Unlock(t)
	if !l.created.Load(t) {
		l.value.Store(t, l.factory(t))
		l.created.Store(t, true)
	}
	return l.value.Load(t)
}

// IsValueCreated reports whether the factory has run.
func (l *Lazy) IsValueCreated(t *sched.Thread) bool {
	return l.created.Load(t)
}

// ToString renders the cell like the .NET property: the value if created,
// a placeholder otherwise.
func (l *Lazy) ToString(t *sched.Thread) string {
	if !l.created.Load(t) {
		return "unset"
	}
	return fmt.Sprintf("%d", l.value.Load(t))
}
