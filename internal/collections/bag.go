package collections

import (
	"lineup/internal/sched"
	"lineup/internal/vsync"
)

// bagSlots is the number of per-thread lists of the bag.
const bagSlots = 4

// Bag is the ConcurrentBag: an unordered multiset of integers organized as
// per-thread lists with work stealing, like the .NET 4.0 implementation.
// Add appends to the calling thread's own list; TryTake prefers the own
// list (newest element first) and otherwise steals the oldest element from
// another thread's list.
//
// Count, IsEmpty and ToArray visit the lists one at a time rather than
// under a global lock. This weak-snapshot behavior is deliberate — it is
// the intentional nondeterminism that Line-Up reports for this class (root
// cause H of Table 2): a scan can observe a state that no serial execution
// produces, and the .NET developers chose to document rather than fix the
// analogous behavior (Section 5.2.2; the paper's instance is TryTake's
// freedom to remove any element, ours is the sibling snapshot weakness —
// see DESIGN.md for the substitution note).
type Bag struct {
	locks [bagSlots]*vsync.Mutex
	lists [bagSlots]*vsync.Cell[[]int]
}

// NewBag constructs an empty bag.
func NewBag(t *sched.Thread) *Bag {
	b := &Bag{}
	for i := 0; i < bagSlots; i++ {
		b.locks[i] = vsync.NewMutex(t, "Bag.lock")
		b.lists[i] = vsync.NewCell(t, "Bag.list", []int(nil))
	}
	return b
}

func (b *Bag) slot(t *sched.Thread) int { return int(t.ID()) % bagSlots }

// Add inserts v into the calling thread's list.
func (b *Bag) Add(t *sched.Thread, v int) {
	s := b.slot(t)
	b.locks[s].Lock(t)
	b.lists[s].Store(t, append(b.lists[s].Load(t), v))
	b.locks[s].Unlock(t)
}

// TryTake removes some element: the newest of the caller's own list if
// non-empty, otherwise the oldest element stolen from the first non-empty
// list of another thread. ok is false if the bag appears empty.
func (b *Bag) TryTake(t *sched.Thread) (v int, ok bool) {
	own := b.slot(t)
	b.locks[own].Lock(t)
	list := b.lists[own].Load(t)
	if len(list) > 0 {
		v = list[len(list)-1]
		b.lists[own].Store(t, list[:len(list)-1])
		b.locks[own].Unlock(t)
		return v, true
	}
	b.locks[own].Unlock(t)
	for i := 0; i < bagSlots; i++ {
		if i == own {
			continue
		}
		b.locks[i].Lock(t)
		list := b.lists[i].Load(t)
		if len(list) > 0 {
			v = list[0] // steal the oldest
			b.lists[i].Store(t, list[1:])
			b.locks[i].Unlock(t)
			return v, true
		}
		b.locks[i].Unlock(t)
	}
	return 0, false
}

// TryPeek returns some element without removing it, with the same
// preference order as TryTake.
func (b *Bag) TryPeek(t *sched.Thread) (v int, ok bool) {
	own := b.slot(t)
	b.locks[own].Lock(t)
	list := b.lists[own].Load(t)
	if len(list) > 0 {
		v = list[len(list)-1]
		b.locks[own].Unlock(t)
		return v, true
	}
	b.locks[own].Unlock(t)
	for i := 0; i < bagSlots; i++ {
		if i == own {
			continue
		}
		b.locks[i].Lock(t)
		list := b.lists[i].Load(t)
		if len(list) > 0 {
			v = list[0]
			b.locks[i].Unlock(t)
			return v, true
		}
		b.locks[i].Unlock(t)
	}
	return 0, false
}

// Count returns the number of elements, visiting the lists one at a time
// (weak snapshot; see the type comment).
func (b *Bag) Count(t *sched.Thread) int {
	n := 0
	for i := 0; i < bagSlots; i++ {
		b.locks[i].Lock(t)
		n += len(b.lists[i].Load(t))
		b.locks[i].Unlock(t)
	}
	return n
}

// IsEmpty reports whether the bag appears empty (weak snapshot).
func (b *Bag) IsEmpty(t *sched.Thread) bool {
	for i := 0; i < bagSlots; i++ {
		b.locks[i].Lock(t)
		n := len(b.lists[i].Load(t))
		b.locks[i].Unlock(t)
		if n > 0 {
			return false
		}
	}
	return true
}

// ToArray returns the elements as a sorted multiset (weak snapshot).
func (b *Bag) ToArray(t *sched.Thread) []int {
	var out []int
	for i := 0; i < bagSlots; i++ {
		b.locks[i].Lock(t)
		out = append(out, b.lists[i].Load(t)...)
		b.locks[i].Unlock(t)
	}
	return out
}
