package collections

import (
	"lineup/internal/sched"
	"lineup/internal/vsync"
)

// Stack is the corrected ConcurrentStack: a lock-free Treiber stack. Push
// and pop are CAS loops on the head pointer; because popped nodes are never
// mutated, a snapshot of the head pointer gives an immutable view of the
// whole stack, which makes Count, ToArray and TryPeek linearizable at the
// single head load. The failing-CAS retry pattern is the first of the
// benign conflict-serializability violations discussed in Section 5.6.
type Stack struct {
	head *vsync.Atomic[*stackNode]
}

type stackNode struct {
	value int
	next  *stackNode // immutable after publication
}

// NewStack constructs an empty stack.
func NewStack(t *sched.Thread) *Stack {
	return &Stack{head: vsync.NewAtomic[*stackNode](t, "Stack.head", nil)}
}

// Push adds v on top of the stack.
func (s *Stack) Push(t *sched.Thread, v int) {
	for {
		h := s.head.Load(t)
		n := &stackNode{value: v, next: h}
		if s.head.CompareAndSwap(t, h, n) {
			return
		}
	}
}

// PushRange pushes all values as one atomic unit; vs[len-1] ends up on top,
// matching .NET's PushRange.
func (s *Stack) PushRange(t *sched.Thread, vs []int) {
	if len(vs) == 0 {
		return
	}
	for {
		h := s.head.Load(t)
		top := h
		for _, v := range vs {
			top = &stackNode{value: v, next: top}
		}
		if s.head.CompareAndSwap(t, h, top) {
			return
		}
	}
}

// TryPop removes and returns the top element; ok is false if the stack is
// empty.
func (s *Stack) TryPop(t *sched.Thread) (v int, ok bool) {
	for {
		h := s.head.Load(t)
		if h == nil {
			return 0, false
		}
		if s.head.CompareAndSwap(t, h, h.next) {
			return h.value, true
		}
	}
}

// TryPopRange pops up to n elements as one atomic unit and returns them top
// first. It returns nil if the stack is empty.
func (s *Stack) TryPopRange(t *sched.Thread, n int) []int {
	for {
		h := s.head.Load(t)
		if h == nil {
			return nil
		}
		var out []int
		node := h
		for len(out) < n && node != nil {
			out = append(out, node.value)
			node = node.next
		}
		if s.head.CompareAndSwap(t, h, node) {
			return out
		}
	}
}

// TryPeek returns the top element without removing it; ok is false if the
// stack is empty.
func (s *Stack) TryPeek(t *sched.Thread) (v int, ok bool) {
	h := s.head.Load(t)
	if h == nil {
		return 0, false
	}
	return h.value, true
}

// Count returns the number of elements (linearizable at the head load).
func (s *Stack) Count(t *sched.Thread) int {
	n := 0
	for node := s.head.Load(t); node != nil; node = node.next {
		n++
	}
	return n
}

// IsEmpty reports whether the stack is empty.
func (s *Stack) IsEmpty(t *sched.Thread) bool {
	return s.head.Load(t) == nil
}

// ToArray returns a snapshot of the elements, top first.
func (s *Stack) ToArray(t *sched.Thread) []int {
	var out []int
	for node := s.head.Load(t); node != nil; node = node.next {
		out = append(out, node.value)
	}
	return out
}

// Clear removes all elements atomically.
func (s *Stack) Clear(t *sched.Thread) {
	s.head.Store(t, nil)
}

// TryPopAll removes every element atomically (a single swap of the head)
// and returns them top first.
func (s *Stack) TryPopAll(t *sched.Thread) []int {
	h := s.head.Swap(t, nil)
	var out []int
	for node := h; node != nil; node = node.next {
		out = append(out, node.value)
	}
	return out
}
