package collections

import (
	"lineup/internal/sched"
	"lineup/internal/vsync"
)

// CountdownEvent is the corrected countdown event: it becomes set when its
// count reaches zero. Signal decrements, AddCount/TryAddCount increment (and
// fail once the event is set), Wait blocks until set. The count is
// manipulated with interlocked compare-and-swap like the .NET
// implementation.
type CountdownEvent struct {
	count *vsync.AtomicInt
	ws    sched.WaitSet
}

// NewCountdownEvent constructs an event with the given initial count.
func NewCountdownEvent(t *sched.Thread, initial int) *CountdownEvent {
	c := &CountdownEvent{count: vsync.NewAtomicInt(t, "CountdownEvent.count", initial)}
	c.ws.SetFootprintLoc(t.NewLoc())
	return c
}

// Signal decrements the count by n; it reports false if the count would
// drop below zero (the .NET version throws). Reaching zero wakes all
// waiters.
func (c *CountdownEvent) Signal(t *sched.Thread, n int) bool {
	for {
		cur := c.count.Load(t)
		if cur < n {
			return false
		}
		if c.count.CompareAndSwap(t, cur, cur-n) {
			if cur-n == 0 {
				c.ws.Broadcast(t)
			}
			return true
		}
	}
}

// TryAddCount increments the count by n unless the event is already set.
func (c *CountdownEvent) TryAddCount(t *sched.Thread, n int) bool {
	for {
		cur := c.count.Load(t)
		if cur == 0 {
			return false
		}
		if c.count.CompareAndSwap(t, cur, cur+n) {
			return true
		}
	}
}

// AddCount increments the count by n; it reports false (instead of the
// .NET exception) if the event is already set.
func (c *CountdownEvent) AddCount(t *sched.Thread, n int) bool {
	return c.TryAddCount(t, n)
}

// IsSet reports whether the count has reached zero.
func (c *CountdownEvent) IsSet(t *sched.Thread) bool {
	return c.count.Load(t) == 0
}

// CurrentCount returns the remaining count.
func (c *CountdownEvent) CurrentCount(t *sched.Thread) int {
	return c.count.Load(t)
}

// Wait blocks until the event is set. The check and the park are adjacent
// instrumented points, so a Signal cannot slip in between under the
// scheduler's granularity.
func (c *CountdownEvent) Wait(t *sched.Thread) {
	for c.count.Load(t) != 0 {
		c.ws.Wait(t)
	}
}

// WaitZero is Wait(0): it reports whether the event is set, without
// blocking.
func (c *CountdownEvent) WaitZero(t *sched.Thread) bool {
	return c.IsSet(t)
}
