// Package vsync provides the shared-memory and synchronization primitives
// that implementations under test must use instead of Go's sync, sync/atomic,
// and channel primitives. Every primitive takes the current logical thread
// (*sched.Thread) and routes each access through the scheduler, which makes
// the access a potential preemption point and records it in the execution
// trace for the race and atomicity checkers.
//
// The vocabulary mirrors what the paper's .NET subjects use: plain fields
// (Cell), volatile fields and interlocked operations (Atomic, AtomicInt),
// monitors (Mutex with TryLock, Cond), and low-level wait sets.
package vsync

import (
	"lineup/internal/sched"
)

// Cell is a plain (non-synchronizing) shared variable of type T. Concurrent
// unsynchronized access to a Cell is a data race, which the race detector
// reports; the scheduler still interleaves accesses deterministically (Go's
// real memory model never comes into play because only one logical thread
// runs at a time).
type Cell[T any] struct {
	loc  int
	name string
	v    T
}

// NewCell allocates a plain shared variable with a display name for reports.
func NewCell[T any](t *sched.Thread, name string, init T) *Cell[T] {
	return &Cell[T]{loc: t.NewLoc(), name: name, v: init}
}

// Load reads the cell.
func (c *Cell[T]) Load(t *sched.Thread) T {
	t.Point(sched.PointRead)
	t.Record(sched.MemRead, c.loc, c.name)
	return c.v
}

// Store writes the cell.
func (c *Cell[T]) Store(t *sched.Thread, v T) {
	t.Point(sched.PointWrite)
	t.Record(sched.MemWrite, c.loc, c.name)
	c.v = v
}

// Atomic is a synchronizing shared variable of comparable type T. Loads and
// stores have volatile (acquire/release) semantics for the race detector, and
// CompareAndSwap/Swap model interlocked operations.
type Atomic[T comparable] struct {
	loc  int
	name string
	v    T
}

// NewAtomic allocates a synchronizing shared variable.
func NewAtomic[T comparable](t *sched.Thread, name string, init T) *Atomic[T] {
	return &Atomic[T]{loc: t.NewLoc(), name: name, v: init}
}

// Load performs a volatile read.
func (a *Atomic[T]) Load(t *sched.Thread) T {
	t.Point(sched.PointAtomic)
	t.Record(sched.MemAtomicLoad, a.loc, a.name)
	return a.v
}

// Store performs a volatile write.
func (a *Atomic[T]) Store(t *sched.Thread, v T) {
	t.Point(sched.PointAtomic)
	t.Record(sched.MemAtomicStore, a.loc, a.name)
	a.v = v
}

// CompareAndSwap atomically replaces the value with new if it equals old,
// reporting whether the swap happened.
func (a *Atomic[T]) CompareAndSwap(t *sched.Thread, old, new T) bool {
	t.Point(sched.PointAtomic)
	t.Record(sched.MemAtomicRMW, a.loc, a.name)
	if a.v == old {
		a.v = new
		return true
	}
	return false
}

// Swap atomically replaces the value and returns the previous one.
func (a *Atomic[T]) Swap(t *sched.Thread, v T) T {
	t.Point(sched.PointAtomic)
	t.Record(sched.MemAtomicRMW, a.loc, a.name)
	old := a.v
	a.v = v
	return old
}

// AtomicInt is a synchronizing integer with interlocked arithmetic.
type AtomicInt struct {
	a Atomic[int]
}

// NewAtomicInt allocates a synchronizing integer.
func NewAtomicInt(t *sched.Thread, name string, init int) *AtomicInt {
	return &AtomicInt{a: Atomic[int]{loc: t.NewLoc(), name: name, v: init}}
}

// Load performs a volatile read.
func (i *AtomicInt) Load(t *sched.Thread) int { return i.a.Load(t) }

// Store performs a volatile write.
func (i *AtomicInt) Store(t *sched.Thread, v int) { i.a.Store(t, v) }

// CompareAndSwap atomically replaces the value if it equals old.
func (i *AtomicInt) CompareAndSwap(t *sched.Thread, old, new int) bool {
	return i.a.CompareAndSwap(t, old, new)
}

// Add atomically adds delta and returns the new value (Interlocked.Add).
func (i *AtomicInt) Add(t *sched.Thread, delta int) int {
	t.Point(sched.PointAtomic)
	t.Record(sched.MemAtomicRMW, i.a.loc, i.a.name)
	i.a.v += delta
	return i.a.v
}

// Mutex is a non-timed monitor lock. Lock blocks; TryLock fails immediately
// if the lock is held, which is also how lock-acquire timeouts are modeled
// under the checker (the timed-out outcome corresponds exactly to a schedule
// in which the lock is observed held; see DESIGN.md). The mutex is reentrant,
// matching .NET monitors.
type Mutex struct {
	loc    int
	name   string
	holder *sched.Thread
	depth  int
	ws     sched.WaitSet
}

// NewMutex allocates a mutex.
func NewMutex(t *sched.Thread, name string) *Mutex {
	m := &Mutex{loc: t.NewLoc(), name: name}
	m.ws.SetFootprintLoc(m.loc)
	return m
}

// Lock acquires the mutex, blocking while it is held by another thread.
func (m *Mutex) Lock(t *sched.Thread) {
	t.Point(sched.PointLock)
	for m.holder != nil && m.holder != t {
		m.ws.Wait(t)
	}
	m.holder = t
	m.depth++
	t.Record(sched.MemAcquire, m.loc, m.name)
}

// TryLock acquires the mutex if it is free (or already held by t) and
// reports whether it did.
func (m *Mutex) TryLock(t *sched.Thread) bool {
	t.Point(sched.PointLock)
	if m.holder != nil && m.holder != t {
		// The failed attempt records nothing, but its result observed the
		// holder; footprint the read so reduction never commutes it past an
		// acquire or release.
		t.Touch(m.loc, false)
		return false
	}
	m.holder = t
	m.depth++
	t.Record(sched.MemAcquire, m.loc, m.name)
	return true
}

// Unlock releases the mutex. Releasing a mutex the thread does not hold
// panics, as that is a bug in the implementation under test.
func (m *Mutex) Unlock(t *sched.Thread) {
	t.Point(sched.PointUnlock)
	if m.holder != t {
		panic("vsync: unlock of mutex not held by this thread")
	}
	t.Record(sched.MemRelease, m.loc, m.name)
	m.depth--
	if m.depth == 0 {
		m.holder = nil
		m.ws.Broadcast(t)
	}
}

// Held reports whether the mutex is currently held by t. It is an assertion
// helper, not a scheduling point; it still footprints the holder read so
// that code branching on it is visible to partial-order reduction.
func (m *Mutex) Held(t *sched.Thread) bool {
	t.Touch(m.loc, false)
	return m.holder == t
}

// Cond is a condition variable associated with a Mutex, with Mesa semantics
// (Wait can wake spuriously; callers re-check their condition in a loop).
type Cond struct {
	m  *Mutex
	ws sched.WaitSet
}

// NewCond allocates a condition variable for m. Its wait set shares the
// mutex's footprint location: condition-variable operations synchronize with
// lock transfers on m, so attributing both to one location keeps their
// conflicts visible to partial-order reduction without a second location.
func NewCond(m *Mutex) *Cond {
	c := &Cond{m: m}
	c.ws.SetFootprintLoc(m.loc)
	return c
}

// Wait atomically registers the thread, releases the mutex, parks until a
// signal, and reacquires the mutex before returning. The register-first
// protocol makes the unlock/park window lost-wakeup free.
func (c *Cond) Wait(t *sched.Thread) {
	if !c.m.Held(t) {
		panic("vsync: Cond.Wait without holding the mutex")
	}
	if c.m.depth != 1 {
		panic("vsync: Cond.Wait with reentrant lock depth != 1")
	}
	c.ws.Register(t)
	c.m.Unlock(t)
	c.ws.Wait(t)
	c.m.Lock(t)
}

// Broadcast wakes all waiters. The caller should hold the mutex.
func (c *Cond) Broadcast(t *sched.Thread) { c.ws.Broadcast(t) }

// Signal wakes one waiter (the earliest registered). The caller should hold
// the mutex.
func (c *Cond) Signal(t *sched.Thread) { c.ws.Signal(t) }
