package vsync_test

import (
	"testing"

	"lineup/internal/sched"
	"lineup/internal/vsync"
)

// run executes a single-schedule program under the default controller and
// fails the test on panic or stuckness (unless wantStuck).
func run(t *testing.T, wantStuck bool, prog sched.Program) *sched.Outcome {
	t.Helper()
	s := sched.NewScheduler(sched.Config{}, nil)
	out := s.Run(prog)
	if out.Err != nil {
		t.Fatalf("execution error: %v", out.Err)
	}
	if out.Stuck != wantStuck {
		t.Fatalf("stuck = %v, want %v", out.Stuck, wantStuck)
	}
	return out
}

func TestCellLoadStore(t *testing.T) {
	var got int
	run(t, false, sched.Program{Threads: []func(*sched.Thread){
		func(th *sched.Thread) {
			c := vsync.NewCell(th, "c", 41)
			c.Store(th, c.Load(th)+1)
			got = c.Load(th)
		},
	}})
	if got != 42 {
		t.Fatalf("got %d", got)
	}
}

func TestAtomicCASSemantics(t *testing.T) {
	run(t, false, sched.Program{Threads: []func(*sched.Thread){
		func(th *sched.Thread) {
			a := vsync.NewAtomic(th, "a", 10)
			if a.CompareAndSwap(th, 11, 12) {
				t.Errorf("CAS with wrong old value succeeded")
			}
			if !a.CompareAndSwap(th, 10, 12) {
				t.Errorf("CAS with right old value failed")
			}
			if a.Load(th) != 12 {
				t.Errorf("value = %d", a.Load(th))
			}
			if old := a.Swap(th, 7); old != 12 {
				t.Errorf("swap returned %d", old)
			}
		},
	}})
}

func TestAtomicIntAdd(t *testing.T) {
	run(t, false, sched.Program{Threads: []func(*sched.Thread){
		func(th *sched.Thread) {
			i := vsync.NewAtomicInt(th, "i", 5)
			if v := i.Add(th, 3); v != 8 {
				t.Errorf("Add returned %d", v)
			}
			if v := i.Add(th, -8); v != 0 {
				t.Errorf("Add returned %d", v)
			}
			if !i.CompareAndSwap(th, 0, 9) || i.Load(th) != 9 {
				t.Errorf("CAS/Load broken")
			}
		},
	}})
}

func TestMutexReentrancy(t *testing.T) {
	run(t, false, sched.Program{Threads: []func(*sched.Thread){
		func(th *sched.Thread) {
			m := vsync.NewMutex(th, "m")
			m.Lock(th)
			m.Lock(th) // reentrant
			if !m.Held(th) {
				t.Errorf("not held after double lock")
			}
			m.Unlock(th)
			if !m.Held(th) {
				t.Errorf("released after one unlock of two")
			}
			m.Unlock(th)
			if m.Held(th) {
				t.Errorf("still held after balanced unlocks")
			}
		},
	}})
}

func TestMutexContention(t *testing.T) {
	// B blocks while A holds the lock, and proceeds after A releases.
	var m *vsync.Mutex
	var order []string
	run(t, false, sched.Program{
		Setup: func(th *sched.Thread) { m = vsync.NewMutex(th, "m") },
		Threads: []func(*sched.Thread){
			func(th *sched.Thread) {
				m.Lock(th)
				th.Point(sched.PointAtomic) // give B a chance to contend
				order = append(order, "A")
				m.Unlock(th)
			},
			func(th *sched.Thread) {
				m.Lock(th)
				order = append(order, "B")
				m.Unlock(th)
			},
		},
	})
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestTryLock(t *testing.T) {
	run(t, false, sched.Program{Threads: []func(*sched.Thread){
		func(th *sched.Thread) {
			m := vsync.NewMutex(th, "m")
			if !m.TryLock(th) {
				t.Errorf("TryLock on free mutex failed")
			}
			if !m.TryLock(th) {
				t.Errorf("reentrant TryLock failed")
			}
			m.Unlock(th)
			m.Unlock(th)
		},
	}})
}

func TestTryLockContended(t *testing.T) {
	// Explore all schedules; in some, B's TryLock must fail while A holds
	// the lock, and in others succeed.
	mk := func(m **vsync.Mutex, results *[]bool) sched.Program {
		return sched.Program{
			Setup: func(th *sched.Thread) { *m = vsync.NewMutex(th, "m") },
			Threads: []func(*sched.Thread){
				func(th *sched.Thread) {
					(*m).Lock(th)
					th.Point(sched.PointAtomic)
					(*m).Unlock(th)
				},
				func(th *sched.Thread) {
					*results = append(*results, (*m).TryLock(th))
					if (*m).Held(th) {
						(*m).Unlock(th)
					}
				},
			},
		}
	}
	var m *vsync.Mutex
	var results []bool
	_, err := sched.Explore(sched.ExploreConfig{
		PreemptionBound: sched.Unbounded,
	}, mk(&m, &results), func(o *sched.Outcome) bool {
		if o.Err != nil {
			t.Fatalf("execution error: %v", o.Err)
		}
		return true
	})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	sawFail, sawOK := false, false
	for _, r := range results {
		if r {
			sawOK = true
		} else {
			sawFail = true
		}
	}
	if !sawFail || !sawOK {
		t.Fatalf("TryLock outcomes not both observed: fail=%v ok=%v", sawFail, sawOK)
	}
}

func TestUnlockNotHeldPanics(t *testing.T) {
	s := sched.NewScheduler(sched.Config{}, nil)
	out := s.Run(sched.Program{Threads: []func(*sched.Thread){
		func(th *sched.Thread) {
			m := vsync.NewMutex(th, "m")
			m.Unlock(th)
		},
	}})
	if out.Err == nil {
		t.Fatalf("expected an execution error from unlocking a free mutex")
	}
}

func TestCondNoLostWakeupAcrossAllSchedules(t *testing.T) {
	// The condition-variable pattern must complete under every schedule:
	// the waiter registers before releasing the lock, so the broadcast in
	// the unlock window is not lost.
	mk := func() sched.Program {
		var (
			m    *vsync.Mutex
			c    *vsync.Cond
			flag *vsync.Cell[bool]
		)
		return sched.Program{
			Setup: func(th *sched.Thread) {
				m = vsync.NewMutex(th, "m")
				c = vsync.NewCond(m)
				flag = vsync.NewCell(th, "flag", false)
			},
			Threads: []func(*sched.Thread){
				func(th *sched.Thread) {
					th.OpStart("wait")
					m.Lock(th)
					for !flag.Load(th) {
						c.Wait(th)
					}
					m.Unlock(th)
					th.OpEnd("wait", "ok")
				},
				func(th *sched.Thread) {
					th.OpStart("set")
					m.Lock(th)
					flag.Store(th, true)
					c.Broadcast(th)
					m.Unlock(th)
					th.OpEnd("set", "ok")
				},
			},
		}
	}
	stuck := 0
	_, err := sched.Explore(sched.ExploreConfig{
		PreemptionBound: sched.Unbounded,
	}, mk(), func(o *sched.Outcome) bool {
		if o.Err != nil {
			t.Fatalf("execution error: %v", o.Err)
		}
		if o.Stuck {
			stuck++
		}
		return true
	})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if stuck != 0 {
		t.Fatalf("%d schedules lost the wakeup", stuck)
	}
}

func TestCondWaitWithoutLockPanics(t *testing.T) {
	s := sched.NewScheduler(sched.Config{}, nil)
	out := s.Run(sched.Program{Threads: []func(*sched.Thread){
		func(th *sched.Thread) {
			m := vsync.NewMutex(th, "m")
			c := vsync.NewCond(m)
			c.Wait(th)
		},
	}})
	if out.Err == nil {
		t.Fatalf("expected an execution error from waiting without the lock")
	}
}

func TestAtomicPointerCAS(t *testing.T) {
	type node struct{ v int }
	run(t, false, sched.Program{Threads: []func(*sched.Thread){
		func(th *sched.Thread) {
			a := vsync.NewAtomic[*node](th, "head", nil)
			n1 := &node{1}
			if !a.CompareAndSwap(th, nil, n1) {
				t.Errorf("CAS nil -> n1 failed")
			}
			n2 := &node{2}
			if a.CompareAndSwap(th, nil, n2) {
				t.Errorf("CAS with stale nil succeeded")
			}
			if a.Load(th) != n1 {
				t.Errorf("wrong head")
			}
		},
	}})
}
