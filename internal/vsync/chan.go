package vsync

import (
	"lineup/internal/sched"
)

// Chan is a bounded FIFO channel built on the instrumented monitor
// primitives, modeling Go's buffered channel for subjects under test (raw
// channels would block the scheduler invisibly). Send blocks while the
// buffer is full, Recv while it is empty; the Try variants fail immediately
// instead. There is no close: subjects model shutdown explicitly.
type Chan[T any] struct {
	mu       *Mutex
	notFull  *Cond
	notEmpty *Cond
	buf      *Cell[[]T]
	cap      int
}

// NewChan allocates a channel with the given capacity (at least 1).
func NewChan[T any](t *sched.Thread, name string, capacity int) *Chan[T] {
	if capacity < 1 {
		capacity = 1
	}
	mu := NewMutex(t, name+".mu")
	return &Chan[T]{
		mu:       mu,
		notFull:  NewCond(mu),
		notEmpty: NewCond(mu),
		buf:      NewCell(t, name+".buf", []T(nil)),
		cap:      capacity,
	}
}

// Cap returns the capacity.
func (c *Chan[T]) Cap() int { return c.cap }

// Send appends v, blocking while the buffer is full.
func (c *Chan[T]) Send(t *sched.Thread, v T) {
	c.mu.Lock(t)
	for len(c.buf.Load(t)) >= c.cap {
		c.notFull.Wait(t)
	}
	c.buf.Store(t, append(c.buf.Load(t), v))
	c.notEmpty.Broadcast(t)
	c.mu.Unlock(t)
}

// TrySend appends v if the buffer has room, reporting whether it did.
func (c *Chan[T]) TrySend(t *sched.Thread, v T) bool {
	c.mu.Lock(t)
	defer c.mu.Unlock(t)
	if len(c.buf.Load(t)) >= c.cap {
		return false
	}
	c.buf.Store(t, append(c.buf.Load(t), v))
	c.notEmpty.Broadcast(t)
	return true
}

// Recv removes and returns the oldest element, blocking while the buffer is
// empty.
func (c *Chan[T]) Recv(t *sched.Thread) T {
	c.mu.Lock(t)
	for len(c.buf.Load(t)) == 0 {
		c.notEmpty.Wait(t)
	}
	b := c.buf.Load(t)
	v := b[0]
	c.buf.Store(t, append([]T(nil), b[1:]...))
	c.notFull.Broadcast(t)
	c.mu.Unlock(t)
	return v
}

// TryRecv removes and returns the oldest element if there is one.
func (c *Chan[T]) TryRecv(t *sched.Thread) (v T, ok bool) {
	c.mu.Lock(t)
	defer c.mu.Unlock(t)
	b := c.buf.Load(t)
	if len(b) == 0 {
		return v, false
	}
	v = b[0]
	c.buf.Store(t, append([]T(nil), b[1:]...))
	c.notFull.Broadcast(t)
	return v, true
}

// Len returns the number of buffered elements (linearizable: one lock).
func (c *Chan[T]) Len(t *sched.Thread) int {
	c.mu.Lock(t)
	defer c.mu.Unlock(t)
	return len(c.buf.Load(t))
}
