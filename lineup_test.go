package lineup_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"lineup"
	"lineup/internal/bench"
	"lineup/internal/vsync"
)

// register is a tiny component defined directly against the public facade,
// as a library user would write it.
type register struct {
	v *vsync.Cell[int]
}

func newRegister(t *lineup.Thread) *register {
	return &register{v: vsync.NewCell(t, "register.v", 0)}
}

func (r *register) Set(t *lineup.Thread, v int) { r.v.Store(t, v) }
func (r *register) Get(t *lineup.Thread) int    { return r.v.Load(t) }

// racyAdd is the classic lost-update read-modify-write.
func (r *register) racyAdd(t *lineup.Thread) { r.v.Store(t, r.v.Load(t)+1) }

func registerSubject(withAdd bool) *lineup.Subject {
	set := lineup.Op{Method: "Set", Args: "5", Run: func(t *lineup.Thread, o any) string {
		o.(*register).Set(t, 5)
		return "ok"
	}}
	get := lineup.Op{Method: "Get", Run: func(t *lineup.Thread, o any) string {
		return fmt.Sprint(o.(*register).Get(t))
	}}
	ops := []lineup.Op{set, get}
	if withAdd {
		add := lineup.Op{Method: "Add", Args: "1", Run: func(t *lineup.Thread, o any) string {
			o.(*register).racyAdd(t)
			return "ok"
		}}
		ops = append(ops, add)
	}
	return &lineup.Subject{
		Name: "Register",
		New:  func(t *lineup.Thread) any { return newRegister(t) },
		Ops:  ops,
	}
}

// TestFacadeCheck exercises the public API end to end: an atomic register
// is linearizable; adding an unsynchronized read-modify-write breaks it.
func TestFacadeCheck(t *testing.T) {
	good := registerSubject(false)
	m := &lineup.Test{Rows: [][]lineup.Op{{good.Ops[0], good.Ops[1]}, {good.Ops[0], good.Ops[1]}}}
	res, err := lineup.Check(good, m, lineup.Options{})
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if res.Verdict != lineup.Pass {
		t.Fatalf("atomic register failed: %v", res.Violation)
	}

	bad := registerSubject(true)
	add := bad.Ops[2]
	get := bad.Ops[1]
	m2 := &lineup.Test{Rows: [][]lineup.Op{{add, get}, {add}}}
	res, err = lineup.Check(bad, m2, lineup.Options{})
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if res.Verdict != lineup.Fail || res.Violation.Kind != lineup.NoWitness {
		t.Fatalf("racy add not caught: %v", res)
	}
}

// TestFacadeReduction exercises Options.Reduction through the public API:
// the sleep-set-reduced check must return the identical verdict and
// violation while exploring no more schedules than the full one.
func TestFacadeReduction(t *testing.T) {
	if r, err := lineup.ParseReduction("sleep"); err != nil || r != lineup.ReductionSleep {
		t.Fatalf("ParseReduction(sleep) = %v, %v", r, err)
	}
	bad := registerSubject(true)
	add, get := bad.Ops[2], bad.Ops[1]
	m := &lineup.Test{Rows: [][]lineup.Op{{add, get}, {add}}}
	full, err := lineup.Check(bad, m, lineup.Options{ExhaustPhase2: true})
	if err != nil {
		t.Fatalf("full check: %v", err)
	}
	reduced, err := lineup.Check(bad, m, lineup.Options{
		ExhaustPhase2: true, Reduction: lineup.ReductionSleep,
	})
	if err != nil {
		t.Fatalf("reduced check: %v", err)
	}
	if full.Verdict != reduced.Verdict {
		t.Fatalf("reduction changed the verdict: %v vs %v", full.Verdict, reduced.Verdict)
	}
	if full.Violation.String() != reduced.Violation.String() {
		t.Fatalf("reduction changed the violation:\n%v\nvs\n%v", full.Violation, reduced.Violation)
	}
	if reduced.Phase2.Executions > full.Phase2.Executions {
		t.Fatalf("reduced run explored more schedules (%d) than full (%d)",
			reduced.Phase2.Executions, full.Phase2.Executions)
	}
	if reduced.Phase2.Pruned == 0 {
		t.Fatal("reduced run pruned nothing")
	}
}

// TestFacadeAutoCheckAndShrink exercises AutoCheck and Shrink through the
// facade.
func TestFacadeAutoCheckAndShrink(t *testing.T) {
	bad := registerSubject(true)
	// Reorder so Add and Get come first in the universe (AutoCheck uses
	// the first n invocations at level n).
	bad.Ops = []lineup.Op{bad.Ops[2], bad.Ops[1], bad.Ops[0]}
	auto, err := lineup.AutoCheck(bad, lineup.AutoOptions{MaxN: 2, MaxTests: 200})
	if err != nil {
		t.Fatalf("autocheck: %v", err)
	}
	if auto.Failed == nil {
		t.Fatalf("AutoCheck missed the racy add in %d tests", auto.Tests)
	}
	min, res, err := lineup.Shrink(bad, auto.Failed.Test, lineup.Options{})
	if err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if res.Verdict != lineup.Fail {
		t.Fatalf("shrunk test passes")
	}
	if min.NumOps() > auto.Failed.Test.NumOps() {
		t.Fatalf("shrink grew the test")
	}
}

// TestNoGoroutineLeaks: executions kill their unfinished logical threads;
// thousands of checks must not accumulate goroutines (stuck executions
// park goroutines that the scheduler must unwind).
func TestNoGoroutineLeaks(t *testing.T) {
	sub, _, ok := bench.Find("SemaphoreSlim")
	if !ok {
		t.Fatal("semaphore not found")
	}
	wait, _ := sub.FindOp("Wait()")
	release, _ := sub.FindOp("Release()")
	m := &lineup.Test{Rows: [][]lineup.Op{{wait, wait}, {release}}} // mostly stuck
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		if _, err := lineup.Check(sub, m, lineup.Options{}); err != nil {
			t.Fatalf("check: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+5 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, after)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestVerdictStrings covers the facade's enums.
func TestVerdictStrings(t *testing.T) {
	if lineup.Pass.String() != "PASS" || lineup.Fail.String() != "FAIL" {
		t.Fatalf("verdict strings broken")
	}
	for _, k := range []lineup.ViolationKind{lineup.Nondeterminism, lineup.NoWitness, lineup.StuckNoWitness} {
		if k.String() == "" || k.String() == "unknown violation" {
			t.Fatalf("kind %d renders %q", k, k.String())
		}
	}
}
