// Dotnetsuite runs the paper's evaluation methodology (Section 5.1) over
// the bundled class suite: for every class — corrected and CTP-like "(Pre)"
// variants — it checks a random sample of test matrices and reports the
// verdicts, the phase statistics, and the minimized first failure, in the
// shape of Table 2.
//
// Run with: go run ./examples/dotnetsuite [-samples N]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"

	"lineup"
	"lineup/internal/bench"
)

func main() {
	samples := flag.Int("samples", 15, "random 3x3 tests per class (paper: 100)")
	flag.Parse()

	fmt.Printf("%-26s %6s %6s %9s %7s  %s\n", "class", "pass", "fail", "ser.hist", "stuck", "first failing op set")
	for _, e := range bench.Registry() {
		for _, sub := range []*lineup.Subject{e.Subject, e.Pre} {
			if sub == nil {
				continue
			}
			sum, err := lineup.RandomCheck(sub, nil, lineup.RandomOptions{
				Rows: 3, Cols: 3, Samples: *samples, Seed: 1,
				Workers: runtime.NumCPU(),
				Options: lineup.Options{PreemptionBound: e.Bound},
			})
			if err != nil {
				log.Fatal(err)
			}
			firstFail := ""
			if sum.FirstFailure != nil {
				min, _, err := lineup.Shrink(sub, sum.FirstFailure.Test, lineup.Options{PreemptionBound: e.Bound})
				if err != nil {
					log.Fatal(err)
				}
				threads, ops := min.Dim()
				firstFail = fmt.Sprintf("%dx%d:", threads, ops)
				for _, row := range min.Rows {
					firstFail += " {"
					for i, op := range row {
						if i > 0 {
							firstFail += " "
						}
						firstFail += op.Name()
					}
					firstFail += "}"
				}
			}
			fmt.Printf("%-26s %6d %6d %9.1f %7d  %s\n",
				sub.Name, sum.Passed, sum.Failed, sum.SerialHistAvg, sum.StuckTests, firstFail)
		}
	}
	fmt.Println("\nFailures on (Pre) classes are the seeded CTP bugs (root causes A..G);")
	fmt.Println("failures on ConcurrentBag, BlockingCollection and Barrier are the")
	fmt.Println("intentional behaviors H..L that the .NET developers documented")
	fmt.Println("instead of fixing (Sections 5.2.2 and 5.3).")
}
