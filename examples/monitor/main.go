// Monitor: check recorded histories without running the scheduler.
//
// The other examples let Line-Up *generate* the concurrent executions; this
// one feeds the standalone monitor a history that was recorded elsewhere —
// here a hand-written JSONL trace with the Fig. 1 shape: Enqueue(10)
// completed strictly before TryDequeue was even called, and yet TryDequeue
// failed. No serial order of the two operations explains that, so the
// monitor rejects the trace against the built-in queue model. A second
// trace overlaps the two operations; reordering the enqueue first now
// yields a witness and the monitor accepts.
//
// Run with: go run ./examples/monitor
package main

import (
	"fmt"
	"log"
	"strings"

	"lineup"
)

// badTrace is the non-linearizable recording: the return of Enqueue(10)
// precedes the call of TryDequeue() in real time (<H), so every witness
// must dequeue from a non-empty queue — but the recording says "Fail".
const badTrace = `# Fig. 1 shape, recorded from a queue with a lock-timeout bug
{"t":0,"k":"call","op":"Enqueue(10)"}
{"t":0,"k":"ret","op":"Enqueue(10)","res":"ok"}
{"t":1,"k":"call","op":"TryDequeue()"}
{"t":1,"k":"ret","op":"TryDequeue()","res":"Fail"}
`

// okTrace overlaps the same two operations, which legalizes the same
// results: the witness linearizes TryDequeue before the enqueue.
const okTrace = `{"t":0,"k":"call","op":"Enqueue(10)"}
{"t":1,"k":"call","op":"TryDequeue()"}
{"t":1,"k":"ret","op":"TryDequeue()","res":"Fail"}
{"t":0,"k":"ret","op":"Enqueue(10)","res":"ok"}
`

func check(model *lineup.Model, trace string) {
	h, err := lineup.ReadTrace(strings.NewReader(trace))
	if err != nil {
		log.Fatal(err)
	}
	out, err := lineup.CheckHistory(model, h, lineup.MonitorOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("history: %d operations, %d pending\n", len(h.Ops()), len(h.Pending()))
	if out.Linearizable {
		fmt.Print("verdict: linearizable; witness:")
		for _, step := range out.Witness {
			fmt.Printf(" %s", step)
		}
		fmt.Println()
	} else {
		fmt.Println("verdict: NOT linearizable (no serial witness exists)")
	}
	fmt.Printf("search:  %d nodes visited, %d seen-set hits\n\n",
		out.Stats.Visited, out.Stats.MemoHits)
}

func main() {
	model, ok := lineup.BuiltinModel("queue")
	if !ok {
		log.Fatal("queue model missing")
	}
	fmt.Println("-- recorded trace, enqueue strictly before failed dequeue --")
	check(model, badTrace)
	fmt.Println("-- same operations, overlapping --")
	check(model, okTrace)
}
