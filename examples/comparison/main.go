// Comparison reproduces the paper's Section 5.6 experiment: the same
// executions that Line-Up's phase 2 explores are fed to a happens-before
// data-race detector and to a conflict-serializability (atomicity) monitor,
// showing why the paper settled on linearizability: the races on correct
// classes are benign (disciplined volatile/interlocked usage), and the
// serializability monitor floods correct lock-free code with false alarms.
//
// Run with: go run ./examples/comparison
package main

import (
	"fmt"
	"log"

	"lineup"
	"lineup/internal/bench"
)

func main() {
	fmt.Printf("%-26s %8s %10s %10s\n", "class", "races", "atomWarns", "lineupFail")
	totalWarn, totalRace, totalLineup := 0, 0, 0
	for _, e := range bench.Registry() {
		res, err := bench.CompareRandom(e.Subject, 2, 2, 8, 5, lineup.Options{PreemptionBound: 2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %8d %10d %10d\n", res.Subject, len(res.Races), res.AtomicityWarnings, res.LineUpFailures)
		totalWarn += res.AtomicityWarnings
		totalRace += len(res.Races)
		totalLineup += res.LineUpFailures
	}
	fmt.Printf("%-26s %8d %10d %10d\n", "total", totalRace, totalWarn, totalLineup)

	fmt.Println("\nsample serializability warnings on the (correct) lock-free stack:")
	stack, _, _ := bench.Find("ConcurrentStack")
	res, err := bench.CompareRandom(stack, 2, 2, 8, 5, lineup.Options{PreemptionBound: 2})
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range res.WarningSamples {
		fmt.Println(" ", w)
	}
	fmt.Println("\nAll warnings above are false alarms (the failing-CAS retry pattern,")
	fmt.Println("Section 5.6, reason 1); Line-Up passes the same tests. Races reported")
	fmt.Println("on SemaphoreSlim and Lazy are the benign double-checked fast paths.")
}
