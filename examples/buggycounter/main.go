// Buggycounter walks through the paper's Section 2.2: the two defective
// counter implementations, what classic linearizability (Definition 1) can
// and cannot detect, and how the generalized definition with stuck
// histories (Definition 3) closes the gap.
//
// Run with: go run ./examples/buggycounter
package main

import (
	"fmt"
	"log"

	"lineup"
	"lineup/internal/collections"
)

type incGetter interface {
	Inc(*lineup.Thread)
	Get(*lineup.Thread) int
}

var (
	inc = lineup.Op{Method: "Inc", Run: func(t *lineup.Thread, obj any) string {
		obj.(incGetter).Inc(t)
		return "ok"
	}}
	get = lineup.Op{Method: "Get", Run: func(t *lineup.Thread, obj any) string {
		return fmt.Sprint(obj.(incGetter).Get(t))
	}}
)

func subject(name string, mk func(*lineup.Thread) any) *lineup.Subject {
	return &lineup.Subject{Name: name, New: mk, Ops: []lineup.Op{inc, get}}
}

func main() {
	correct := subject("Counter", func(t *lineup.Thread) any { return collections.NewCounter(t) })
	counter1 := subject("Counter1", func(t *lineup.Thread) any { return collections.NewCounter1(t) })
	counter2 := subject("Counter2", func(t *lineup.Thread) any { return collections.NewCounter2(t) })

	m := &lineup.Test{Rows: [][]lineup.Op{{inc, get}, {inc}}}
	fmt.Println("test:")
	fmt.Print(m)

	// Counter1 (Section 2.2.1): Inc without synchronization loses updates.
	res, err := lineup.Check(counter1, m, lineup.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCounter1 (unsynchronized Inc), Check: %v\n", res.Verdict)
	if res.Violation != nil {
		fmt.Println(res.Violation)
	}

	// Counter2 (Section 2.2.2): Get leaks the lock. Against its own serial
	// behaviors the wedging is deterministic, so the synthesized check
	// passes — the paper's Fig. 4 point is about checking against a GIVEN
	// specification, which CheckAgainstModel does below.
	res, err = lineup.Check(counter2, m, lineup.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Counter2 (leaked lock), Check against its own serial behaviors: %v\n", res.Verdict)

	classic, err := lineup.CheckAgainstModel(counter2, correct, m, lineup.RefOptions{ClassicOnly: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Counter2 vs counter spec, classic Definition 1:      %v  (cannot see erroneous blocking)\n", classic.Verdict)

	gen, err := lineup.CheckAgainstModel(counter2, correct, m, lineup.RefOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Counter2 vs counter spec, generalized Definition 3:  %v\n", gen.Verdict)
	if gen.Violation != nil {
		fmt.Println(gen.Violation)
	}

	// And the correct counter passes everything, including tests with the
	// blocking Dec (its stuck histories have stuck serial witnesses).
	dec := lineup.Op{Method: "Dec", Run: func(t *lineup.Thread, obj any) string {
		obj.(*collections.Counter).Dec(t)
		return "ok"
	}}
	blocking := &lineup.Test{Rows: [][]lineup.Op{{dec}, {inc, dec}}}
	res, err = lineup.Check(correct, blocking, lineup.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("correct Counter with blocking Dec: %v (%d stuck serial histories witnessed)\n",
		res.Verdict, res.Phase1.Stuck)
}
