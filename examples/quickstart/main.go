// Quickstart: check a hand-written concurrent queue with Line-Up.
//
// The queue below is the paper's Fig. 1 scenario in miniature: its TryTake
// uses a lock acquire that can time out (modeled by TryLock under the
// deterministic scheduler), so it can fail even when the queue is
// non-empty. Line-Up finds the violation automatically from nothing but a
// set of invocations — no specification, no linearization points — and the
// example then shrinks the failing test to its minimal form.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lineup"
	"lineup/internal/vsync"
)

// MiniQueue is a user-written component under test. Note the only
// concession to the checker: methods take the current *lineup.Thread and
// shared state lives in vsync cells, so the deterministic scheduler can
// interleave accesses.
type MiniQueue struct {
	mu    *vsync.Mutex
	items *vsync.Cell[[]int]
}

// NewMiniQueue constructs an empty queue.
func NewMiniQueue(t *lineup.Thread) *MiniQueue {
	return &MiniQueue{
		mu:    vsync.NewMutex(t, "MiniQueue.lock"),
		items: vsync.NewCell(t, "MiniQueue.items", []int(nil)),
	}
}

// Add appends v.
func (q *MiniQueue) Add(t *lineup.Thread, v int) {
	q.mu.Lock(t)
	q.items.Store(t, append(q.items.Load(t), v))
	q.mu.Unlock(t)
}

// TryTake removes the head element — but the lock acquire "times out" when
// the lock is contended (the seeded Fig. 1 bug).
func (q *MiniQueue) TryTake(t *lineup.Thread) (int, bool) {
	if !q.mu.TryLock(t) { // BUG: should be a plain blocking Lock
		return 0, false
	}
	defer q.mu.Unlock(t)
	items := q.items.Load(t)
	if len(items) == 0 {
		return 0, false
	}
	q.items.Store(t, items[1:])
	return items[0], true
}

func main() {
	add := func(v int) lineup.Op {
		return lineup.Op{Method: "Add", Args: fmt.Sprint(v), Run: func(t *lineup.Thread, obj any) string {
			obj.(*MiniQueue).Add(t, v)
			return "ok"
		}}
	}
	tryTake := lineup.Op{Method: "TryTake", Run: func(t *lineup.Thread, obj any) string {
		v, ok := obj.(*MiniQueue).TryTake(t)
		if !ok {
			return "Fail"
		}
		return fmt.Sprint(v)
	}}

	sub := &lineup.Subject{
		Name: "MiniQueue",
		New:  func(t *lineup.Thread) any { return NewMiniQueue(t) },
		Ops:  []lineup.Op{add(200), add(400), tryTake},
	}

	// The only manual step (Section 1.1): pick the invocations to test.
	// RandomCheck enumerates test matrices over them and checks each.
	sum, err := lineup.RandomCheck(sub, nil, lineup.RandomOptions{
		Rows: 2, Cols: 2, Samples: 25, Seed: 1, StopAtFirstFailure: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checked %d random 2x2 tests: %d passed, %d failed\n",
		sum.Passed+sum.Failed, sum.Passed, sum.Failed)
	if sum.FirstFailure == nil {
		fmt.Println("no violation found — try more samples")
		return
	}

	min, res, err := lineup.Shrink(sub, sum.FirstFailure.Test, lineup.Options{})
	if err != nil {
		log.Fatal(err)
	}
	threads, ops := min.Dim()
	fmt.Printf("\nminimal failing test (%dx%d):\n%s\n", threads, ops, min)
	fmt.Println(res.Violation)
	fmt.Println("Any such violation proves MiniQueue is not linearizable with")
	fmt.Println("respect to ANY deterministic sequential specification (Thm. 5).")
}
