// Generate: find a seeded bug with coverage-guided test generation.
//
// The sharded counter below splits its count across two shards to reduce
// contention, but its Total saves and restores a cached sum with a racy
// read-modify-write, so concurrent Adds can lose an update of the cache.
// Instead of sampling random test matrices, this example grows a corpus:
// starting from the smallest pairwise tests it mutates corpus entries and
// keeps every mutant whose check touches new memory locations or produces
// new concurrent histories, until a violation falls out. The run is fully
// reproducible — same seed, same corpus, same violation.
//
// Run with: go run ./examples/generate
package main

import (
	"fmt"
	"log"

	"lineup"
	"lineup/internal/vsync"
)

// ShardedCounter is the component under test: per-shard counts plus a
// cached total that is "refreshed" with an unlocked read-modify-write.
type ShardedCounter struct {
	shards [2]*vsync.AtomicInt
	total  *vsync.AtomicInt
}

// NewShardedCounter constructs a zeroed counter.
func NewShardedCounter(t *lineup.Thread) *ShardedCounter {
	c := &ShardedCounter{total: vsync.NewAtomicInt(t, "ShardedCounter.total", 0)}
	for i := range c.shards {
		c.shards[i] = vsync.NewAtomicInt(t, fmt.Sprintf("ShardedCounter.shard%d", i), 0)
	}
	return c
}

// Add increments one shard — and then bumps the cached total with a racy
// load-then-store instead of an atomic add.
func (c *ShardedCounter) Add(t *lineup.Thread, shard int) {
	c.shards[shard%2].Add(t, 1)
	cached := c.total.Load(t) // BUG: lost update — should be c.total.Add(t, 1)
	c.total.Store(t, cached+1)
}

// Total returns the cached sum.
func (c *ShardedCounter) Total(t *lineup.Thread) int {
	return c.total.Load(t)
}

func main() {
	add := func(shard int) lineup.Op {
		return lineup.Op{Method: "Add", Args: fmt.Sprint(shard), Run: func(t *lineup.Thread, obj any) string {
			obj.(*ShardedCounter).Add(t, shard)
			return "ok"
		}}
	}
	total := lineup.Op{Method: "Total", Run: func(t *lineup.Thread, obj any) string {
		return fmt.Sprint(obj.(*ShardedCounter).Total(t))
	}}

	sub := &lineup.Subject{
		Name: "ShardedCounter",
		New:  func(t *lineup.Thread) any { return NewShardedCounter(t) },
		Ops:  []lineup.Op{add(0), add(1), total},
	}

	res, err := lineup.Generate(sub, lineup.GenOptions{
		Seed:   1,
		Budget: 300,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d tests (seed=%d): %d accepted into the corpus\n",
		res.Tests, res.Seed, res.Accepted)
	fmt.Printf("coverage: %d (kind,loc) pairs, %d distinct concurrent histories\n",
		res.CoveragePairs, res.CoverageHists)
	if res.Failed == nil {
		fmt.Println("no violation within the budget — try a larger one")
		return
	}
	fmt.Printf("\nviolation at test %d (rerun with seed %d to reproduce):\n%s\n",
		res.TestsToFailure, res.Seed, res.Failed.Test)
	fmt.Println(res.Failed.Violation)
}
