// Regression demonstrates the observation-file workflow of Section 4.2 as
// a library: synthesize the specification of a test once on a known-good
// build, persist it as an observation file, and from then on re-verify only
// phase 2 against the recorded file — catching regressions (here: swapping
// in the CTP-like queue) without re-deriving the spec.
//
// Run with: go run ./examples/regression
package main

import (
	"bytes"
	"fmt"
	"log"

	"lineup"
	"lineup/internal/bench"
	"lineup/internal/core"
	"lineup/internal/obsfile"
)

func main() {
	good, _, _ := bench.Find("ConcurrentQueue")
	bad, _, _ := bench.Find("ConcurrentQueue(Pre)")
	m, err := bench.ParseTest(good, "Enqueue(10) TryDequeue() / Count()")
	if err != nil {
		log.Fatal(err)
	}

	// Record: phase 1 on the good build, persisted as an observation file.
	spec, stats, err := core.SynthesizeSpec(good, m, lineup.Options{})
	if err != nil {
		log.Fatal(err)
	}
	var file bytes.Buffer
	if err := obsfile.Write(&file, spec); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d serial histories (%d serial executions):\n\n%s\n",
		stats.Histories+stats.Stuck, stats.Executions, file.String())

	// Verify: parse the file back and run phase 2 only, against both
	// builds. ParseTest resolves the same ops for the (Pre) variant because
	// the two share one invocation vocabulary.
	parsed, err := obsfile.Parse(&file)
	if err != nil {
		log.Fatal(err)
	}
	reloaded := parsed.ToSpec()

	for _, sub := range []*lineup.Subject{good, bad} {
		m2, err := bench.ParseTest(sub, "Enqueue(10) TryDequeue() / Count()")
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.CheckAgainstSpec(sub, m2, reloaded, lineup.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s -> %v (phase 2: %d histories over %d schedules)\n",
			sub.Name, res.Verdict, res.Phase2.Histories, res.Phase2.Executions)
		if res.Violation != nil {
			fmt.Println(res.Violation)
		}
	}
}
