package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lineup/internal/core"
	"lineup/internal/telemetry"
)

// buildLineup compiles the CLI binary once per test into a temp dir, so the
// kill/resume test exercises the real process boundary (SIGKILL mid-run)
// rather than an in-process simulation.
func buildLineup(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "lineup")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building lineup: %v\n%s", err, out)
	}
	return bin
}

// deterministicLines strips the wall-clock-bearing lines ("... avg") from a
// check report, keeping the verdict counts, the first failing test, and the
// violation report — everything that must survive a kill/resume unchanged.
func deterministicLines(out string) string {
	var keep []string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "avg") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// TestCheckCheckpointResumeAfterKill is the end-to-end acceptance check for
// checkpoint/resume: a 'lineup check -checkpoint' process is SIGKILLed
// mid-run, then resumed with '-resume'; the final report must match the
// uninterrupted run's, for 1 and 4 test workers, with and without sleep-set
// reduction (the checkpoint records the strategy, so a resumed run prunes
// the same branches the killed one did).
func TestCheckCheckpointResumeAfterKill(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real processes; skipped in -short mode")
	}
	bin := buildLineup(t)
	for _, reduction := range []string{"none", "sleep"} {
		t.Run("reduction="+reduction, func(t *testing.T) {
			testKillResume(t, bin, reduction)
		})
	}
}

func testKillResume(t *testing.T, bin, reduction string) {
	args := func(extra ...string) []string {
		return append([]string{
			"check", "-class", "SemaphoreSlim(Pre)",
			"-samples", "4", "-seed", "1", "-shrink=false",
			"-reduction", reduction,
		}, extra...)
	}
	base, err := exec.Command(bin, args("-workers", "1")...).Output()
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	want := deterministicLines(string(base))
	if !strings.Contains(want, "failed") || !strings.Contains(want, "violation") {
		t.Fatalf("baseline run found no violation; fixture broken:\n%s", want)
	}
	if reduction == "sleep" && !strings.Contains(want, "reduction (sleep):") {
		t.Fatalf("reduced baseline missing the reduction counters:\n%s", want)
	}

	for _, workers := range []string{"1", "4"} {
		t.Run("workers="+workers, func(t *testing.T) {
			ck := filepath.Join(t.TempDir(), "ckpt.json")
			victim := exec.Command(bin, args("-workers", workers, "-checkpoint", ck)...)
			if err := victim.Start(); err != nil {
				t.Fatalf("starting victim: %v", err)
			}
			// Kill -9 as soon as at least one test has been checkpointed.
			deadline := time.Now().Add(60 * time.Second)
			for {
				if cp, err := core.LoadRandomCheckpoint(ck); err == nil && len(cp.Tests) >= 1 {
					break
				}
				if time.Now().After(deadline) {
					victim.Process.Kill()
					victim.Wait()
					t.Fatalf("victim wrote no checkpoint within 60s")
				}
				time.Sleep(5 * time.Millisecond)
			}
			if err := victim.Process.Kill(); err != nil {
				t.Fatalf("SIGKILL: %v", err)
			}
			victim.Wait() // expected to report the kill; the checkpoint is what matters

			cp, err := core.LoadRandomCheckpoint(ck)
			if err != nil {
				t.Fatalf("checkpoint unreadable after SIGKILL (atomic write broken?): %v", err)
			}
			if len(cp.Tests) >= cp.Samples {
				t.Fatalf("victim finished all %d tests before the kill; fixture too fast", cp.Samples)
			}

			// The resumed run also writes a telemetry event trace: both the
			// checkpoint and the trace go through obsfile.AtomicWriteFile, so
			// this doubles as the CLI-level check that the fsync-hardened
			// atomic write path produces complete, parseable files.
			traceOut := filepath.Join(t.TempDir(), "trace.jsonl")
			resumed, err := exec.Command(bin, args("-workers", workers, "-resume", ck, "-checkpoint", ck, "-trace-out", traceOut)...).Output()
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if got := deterministicLines(string(resumed)); got != want {
				t.Errorf("resumed report differs from uninterrupted run:\n--- resumed ---\n%s\n--- uninterrupted ---\n%s", got, want)
			}
			tf, err := os.Open(traceOut)
			if err != nil {
				t.Fatalf("telemetry trace not written: %v", err)
			}
			events, err := telemetry.ReadTraceEvents(tf)
			tf.Close()
			if err != nil {
				t.Fatalf("telemetry trace unparseable: %v", err)
			}
			if len(events) == 0 || events[len(events)-1].Kind != "final" {
				t.Errorf("telemetry trace incomplete: %d events", len(events))
			}
			final, err := core.LoadRandomCheckpoint(ck)
			if err != nil {
				t.Fatalf("final checkpoint: %v", err)
			}
			if len(final.Tests) != final.Samples {
				t.Errorf("final checkpoint records %d of %d tests", len(final.Tests), final.Samples)
			}
			if got := final.Reduction; got != reduction && !(got == "" && reduction == "none") {
				t.Errorf("checkpoint records reduction %q, run used %q", got, reduction)
			}
			_ = os.Remove(ck)
		})
	}
}

// TestCheckResumeReductionMismatch asserts a checkpoint written under one
// reduction strategy cannot be resumed under another: the pruned schedule
// spaces differ, so silently mixing them would corrupt the summary.
func TestCheckResumeReductionMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a real binary; skipped in -short mode")
	}
	bin := buildLineup(t)
	ck := filepath.Join(t.TempDir(), "ckpt.json")
	args := []string{
		"check", "-class", "ConcurrentStack",
		"-samples", "2", "-rows", "2", "-cols", "2", "-workers", "1",
		"-checkpoint", ck, "-reduction", "sleep",
	}
	if out, err := exec.Command(bin, args...).CombinedOutput(); err != nil {
		t.Fatalf("checkpointed run: %v\n%s", err, out)
	}
	out, err := exec.Command(bin,
		"check", "-class", "ConcurrentStack",
		"-samples", "2", "-rows", "2", "-cols", "2", "-workers", "1",
		"-resume", ck, "-reduction", "none").CombinedOutput()
	if err == nil {
		t.Fatalf("resume with a different reduction strategy must fail:\n%s", out)
	}
	if !strings.Contains(string(out), "checkpoint") {
		t.Fatalf("mismatch diagnostic does not mention the checkpoint:\n%s", out)
	}
}
