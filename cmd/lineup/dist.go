package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"lineup/internal/bench"
	"lineup/internal/core"
	"lineup/internal/dist"
	"lineup/internal/sched"
)

// cmdDist runs one check's phase-2 exploration through the fault-tolerant
// coordinator: the schedule tree is split into work units, units are leased to
// workers under heartbeat-renewed deadlines, and the merged verdict is
// bit-identical to the sequential exhaustive check no matter how many workers
// ran, died, or were reassigned. With -dir the coordinator journals durable
// state, so a killed coordinator resumes without re-running (or re-counting)
// completed units. With -exec each unit runs in a separate worker process that
// can be kill -9'd without taking the run down.
//
// The same subcommand is also the worker half: "lineup dist -worker JOBFILE"
// runs one leased unit and is only ever spawned by an -exec coordinator.
func cmdDist(args []string) error {
	fs := flag.NewFlagSet("dist", flag.ExitOnError)
	workerJob := fs.String("worker", "", "run as a worker process for JOBFILE (internal; spawned by -exec)")
	class := fs.String("class", "", "class name (see 'lineup list')")
	testSpec := fs.String("test", "", `test matrix, e.g. "Enqueue(10) TryDequeue() / Count()"`)
	bound := fs.Int("pb", 0, "preemption bound (0 = class default)")
	reductionSpec := fs.String("reduction", "none", "partial-order reduction: none or sleep")
	maxFailures := fs.Int("max-failures", 0, "contain up to N failed executions instead of aborting (0 = strict)")
	watchdog := fs.Duration("watchdog", 0, "abandon executions making no scheduler progress for this long (0 = off)")
	workers := fs.Int("workers", runtime.NumCPU(), "concurrent workers")
	depth := fs.Int("depth", 2, "schedule-tree depth at which to split work units")
	dir := fs.String("dir", "", "durable coordination directory (journal + unit reports; enables resume)")
	lease := fs.Duration("lease", 10*time.Second, "lease length; a worker silent this long is presumed dead")
	maxAttempts := fs.Int("max-attempts", 3, "lease attempts per unit before it is poisoned")
	backoff := fs.Duration("backoff", 25*time.Millisecond, "reassignment backoff after a failed lease (doubles per retry)")
	execMode := fs.Bool("exec", false, "run each unit in a separate worker process (kill -9 isolation)")
	killUnit := fs.Int("kill-worker", -1, "with -exec: SIGKILL the worker for unit N on its first attempt (fault injection)")
	tflags := addTelemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *workerJob != "" {
		resolve := func(name string) (*core.Subject, bool) {
			sub, _, ok := findSubject(name)
			return sub, ok
		}
		return dist.RunWorker(*workerJob, resolve, os.Stdout)
	}

	if *class == "" || *testSpec == "" {
		return fmt.Errorf("dist: -class and -test are required (see 'lineup dist -h')")
	}
	sub, pb, ok := findSubject(*class)
	if !ok {
		return fmt.Errorf("unknown class %q (try 'lineup list')", *class)
	}
	m, err := bench.ParseTest(sub, *testSpec)
	if err != nil {
		return err
	}
	if *bound != 0 {
		pb = *bound
	}
	reduction, err := sched.ParseReduction(*reductionSpec)
	if err != nil {
		return err
	}
	tr, err := tflags.start("dist " + sub.Name)
	if err != nil {
		return err
	}
	copts := core.Options{
		PreemptionBound: pb,
		MaxFailures:     *maxFailures,
		Watchdog:        *watchdog,
		Reduction:       reduction,
		Telemetry:       tr.C,
	}
	cfg := dist.Config{
		Subject: sub, Test: m, Options: copts,
		Dir: *dir, Workers: *workers, Depth: *depth,
		Lease: *lease, MaxAttempts: *maxAttempts, Backoff: *backoff,
		Telemetry: tr.C,
	}
	if *execMode {
		if len(m.Init) > 0 || len(m.Final) > 0 {
			return fmt.Errorf("dist: init/final sections are not supported with -exec workers yet")
		}
		bin, err := os.Executable()
		if err != nil {
			return err
		}
		jobDir := *dir
		if jobDir == "" {
			jobDir, err = os.MkdirTemp("", "lineup-dist-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(jobDir)
		} else if err := os.MkdirAll(jobDir, 0o755); err != nil {
			return err
		}
		rows := make([][]string, len(m.Rows))
		for i, row := range m.Rows {
			for _, op := range row {
				rows[i] = append(rows[i], op.Name())
			}
		}
		cfg.Launcher = &dist.ExecLauncher{
			Bin: bin, Dir: jobDir,
			Subject: sub.Name, Test: rows,
			Options:  dist.OptionsToWorker(copts),
			KillUnit: *killUnit,
		}
	} else if *killUnit >= 0 {
		return fmt.Errorf("dist: -kill-worker requires -exec")
	}

	res, stats, err := dist.Run(context.Background(), cfg)
	// Lease traffic is timing-dependent, so everything but the verdict goes to
	// stderr; stdout stays deterministic for a given (class, test, flags).
	fmt.Fprintf(os.Stderr, "units: %d total, %d done, %d resumed, %d poisoned; leases: %d granted, %d expired, %d retries, %d stale, %d worker failures\n",
		stats.Units, stats.Done, stats.Resumed, stats.Poisoned,
		stats.LeasesGranted, stats.LeasesExpired, stats.Retries, stats.StaleReports, stats.WorkerFailures)
	if err = tr.finishAfter(err); err != nil {
		return err
	}
	fmt.Printf("verdict: %v (%d histories, %d stuck, %d schedules)\n",
		res.Verdict, res.Phase2.Histories, res.Phase2.Stuck, res.Phase2.Executions)
	if res.Violation != nil {
		fmt.Println(indent(res.Violation.String()))
		return errViolation
	}
	return nil
}
