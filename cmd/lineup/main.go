// Command lineup is the command-line front end of the Line-Up
// reproduction: it regenerates the paper's tables and figures, runs the
// checker on the bundled classes, and reproduces the Section 5.6
// comparisons.
//
// Run "lineup" with no arguments (or an unknown subcommand) for the full
// subcommand table.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"lineup/internal/bench"
	"lineup/internal/collections"
	"lineup/internal/core"
	"lineup/internal/monitor"
	"lineup/internal/monitor/fast"
	"lineup/internal/obsfile"
	"lineup/internal/sched"
	"lineup/internal/subjects"
	"lineup/internal/telemetry"
)

// command is one subcommand of the CLI; the commands table drives both
// dispatch and the usage listing, so the two cannot drift apart.
type command struct {
	name     string
	args     string // argument summary for the usage listing
	synopsis string
	run      func(args []string) error
}

// noArgs adapts the argumentless figure commands to the table signature.
func noArgs(fn func() error) func([]string) error {
	return func([]string) error { return fn() }
}

var commands = []command{
	{"table1", "", "class inventory (Table 1)", cmdTable1},
	{"table2", "[flags]", "evaluation results (Table 2)", cmdTable2},
	{"causes", "[-v]", "directed minimal test per root cause A..L", cmdCauses},
	{"check", "-class NAME [flags]", "RandomCheck one class", cmdCheck},
	{"generate", "-class NAME [flags]", "coverage-guided test generation against one class", cmdGenerate},
	{"monitor", "-trace FILE -model NAME [flags]", "check a recorded JSONL history trace against a model", cmdMonitor},
	{"serve", "-model NAME [flags]", "stream live JSONL history events through the sharded incremental checker", cmdServe},
	{"fig1", "", "the Fig. 1 queue violation", noArgs(cmdFig1)},
	{"fig4", "", "the Fig. 4 counter (classic vs generalized)", noArgs(cmdFig4)},
	{"fig7", "", "the Fig. 7 observation file and violation report", noArgs(cmdFig7)},
	{"fig9", "", "the Fig. 9 ManualResetEvent bug", noArgs(cmdFig9)},
	{"compare", "[flags]", "race + serializability comparison (Section 5.6)", cmdCompare},
	{"parallel", "[flags]", "sequential vs prefix-sharded parallel explorer (wall + speedup)", cmdParallel},
	{"reduction", "[flags]", "full vs sleep-set-reduced exploration per root cause", cmdReduction},
	{"ablate", "", "preemption-bound ablation", cmdAblate},
	{"memory", "[flags]", "store-buffer (TSO) SC-violation scan (Section 5.7)", cmdMemory},
	{"dist", "-class NAME -test SPEC [flags]", "fault-tolerant distributed phase-2 exploration", cmdDist},
	{"record", "-class NAME -test SPEC [-o FILE]", "record an observation file (phase 1)", cmdRecord},
	{"verify", "-class NAME -test SPEC -obs FILE", "re-check phase 2 against a recorded observation file", cmdVerify},
	{"list", "", "list the registered classes", cmdList},
}

// errViolation marks a check that found (and already reported) a
// linearizability violation; run maps it to exit code 1 without the
// "lineup:" error prefix.
var errViolation = errors.New("violation found")

func main() {
	os.Exit(run(os.Args[1:]))
}

// run dispatches one CLI invocation and returns the process exit code:
// 0 on success, 1 on errors and violations, 2 on usage mistakes.
func run(args []string) int {
	if len(args) == 0 {
		usage(os.Stderr)
		return 2
	}
	name, rest := args[0], args[1:]
	for _, c := range commands {
		if c.name != name {
			continue
		}
		if err := c.run(rest); err != nil {
			if !errors.Is(err, errViolation) {
				fmt.Fprintln(os.Stderr, "lineup:", err)
			}
			return 1
		}
		return 0
	}
	fmt.Fprintf(os.Stderr, "lineup: unknown subcommand %q\n\n", name)
	usage(os.Stderr)
	return 2
}

// usage prints the full subcommand table, generated from commands.
func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: lineup <subcommand> [flags]")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "subcommands:")
	for _, c := range commands {
		left := c.name
		if c.args != "" {
			left += " " + c.args
		}
		fmt.Fprintf(w, "  %-42s %s\n", left, c.synopsis)
	}
}

func cmdTable1(args []string) error {
	if len(args) > 0 {
		return fmt.Errorf("table1 takes no arguments")
	}
	bench.WriteTable1(os.Stdout)
	return nil
}

func cmdList(args []string) error {
	if len(args) > 0 {
		return fmt.Errorf("list takes no arguments")
	}
	for _, e := range bench.Registry() {
		fmt.Println(e.Subject.Name)
		if e.Pre != nil {
			fmt.Println(e.Pre.Name)
		}
	}
	for _, e := range subjects.Registry() {
		fmt.Println(e.Subject.Name)
		fmt.Println(e.Pre.Name)
		fmt.Println(e.Relaxed.Name)
	}
	return nil
}

// cmdMonitor checks one recorded concurrent history against a built-in
// sequential model with the standalone monitor: no schedule exploration and
// no phase-1 serial enumeration, just the Wing–Gong witness search over the
// trace. A violation exits with status 1.
func cmdMonitor(args []string) error {
	fs := flag.NewFlagSet("monitor", flag.ExitOnError)
	trace := fs.String("trace", "", "JSONL history trace file ('-' for stdin)")
	modelName := fs.String("model", "", "sequential model: "+strings.Join(monitor.BuiltinNames(), ", "))
	classic := fs.Bool("classic", false, "classic Definition 1 treatment of pending operations")
	noMemo := fs.Bool("no-memo", false, "disable the memoized seen-set")
	noPart := fs.Bool("no-partition", false, "disable P-compositional partitioning")
	window := fs.Int("window", 0, "check incrementally, retiring quiescent windows of N completed ops (0 = batch; caps peak memory on long traces)")
	witnessSpec := fs.String("witness", "wgl", "witness search: wgl (memoized Wing–Gong) or fast (specialized near-log-linear monitor with WGL fallback)")
	verbose := fs.Bool("v", false, "print the witness linearization")
	if err := fs.Parse(args); err != nil {
		return err
	}
	useFast, err := parseMonitorWitness(*witnessSpec)
	if err != nil {
		return fmt.Errorf("monitor: %w", err)
	}
	if *trace == "" {
		return fmt.Errorf("monitor: -trace is required")
	}
	if *modelName == "" {
		return fmt.Errorf("monitor: -model is required (one of %s)", strings.Join(monitor.BuiltinNames(), ", "))
	}
	model, ok := monitor.Builtin(*modelName)
	if !ok {
		return fmt.Errorf("monitor: unknown model %q (one of %s)", *modelName, strings.Join(monitor.BuiltinNames(), ", "))
	}
	var r io.Reader = os.Stdin
	if *trace != "-" {
		f, err := os.Open(*trace)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	opts := monitor.Options{NoMemo: *noMemo, NoPartition: *noPart}
	if *classic {
		opts.Mode = monitor.ModeClassic
	}
	if *window > 0 {
		// Streaming path: the trace never materializes as one History —
		// events flow through the incremental windowed checker, so peak
		// memory is bounded by the window, not the trace length.
		if *noPart {
			return fmt.Errorf("monitor: -no-partition is incompatible with -window (the stream is split before windowing)")
		}
		return monitorStream(model, r, opts, *window, useFast)
	}
	h, err := obsfile.ReadTrace(r)
	if err != nil {
		return err
	}
	if useFast {
		if kind, ok := fast.KindFor(model.Name); !ok {
			fmt.Fprintf(os.Stderr, "monitor: no specialized monitor for model %q; using the Wing–Gong search\n", model.Name)
		} else {
			lin, ferr := fast.Check(kind, h)
			switch {
			case ferr == nil:
				ops, pending := h.Ops(), len(h.Pending())
				stuck := ""
				if h.Stuck {
					stuck = ", stuck"
				}
				fmt.Printf("checked %d operations (%d pending%s) against model %q\n", len(ops), pending, stuck, model.Name)
				fmt.Printf("search: fast %s monitor, certificate-backed (no state enumeration)\n", model.Name)
				if lin {
					fmt.Println("verdict: linearizable")
					if *verbose {
						fmt.Println("(the fast monitor proves witness existence without materializing one; rerun with -witness wgl for the linearization)")
					}
					return nil
				}
				fmt.Println("verdict: NOT linearizable")
				return errViolation
			case errors.Is(ferr, fast.ErrAmbiguous):
				fmt.Fprintln(os.Stderr, "monitor: history outside the fast monitor's decidable fragment; falling back to the Wing–Gong search")
			default:
				return ferr
			}
		}
	}
	out, err := monitor.Check(model, h, opts)
	if err != nil {
		return err
	}
	ops := h.Ops()
	pending := len(h.Pending())
	stuck := ""
	if h.Stuck {
		stuck = ", stuck"
	}
	fmt.Printf("checked %d operations (%d pending%s) against model %q\n", len(ops), pending, stuck, model.Name)
	fmt.Printf("search: %d parts, %d nodes visited, %d seen-set hits\n",
		out.Stats.Parts, out.Stats.Visited, out.Stats.MemoHits)
	if out.Linearizable {
		fmt.Println("verdict: linearizable")
		if *verbose && len(out.Witness) > 0 {
			fmt.Println("witness:")
			for _, step := range out.Witness {
				fmt.Printf("  %s\n", step)
			}
		}
		return nil
	}
	fmt.Println("verdict: NOT linearizable")
	if out.FailedPending != nil {
		fmt.Printf("pending operation with no stuck serial witness: %s\n", out.FailedPending)
	}
	if out.FailedPart != "" {
		fmt.Printf("failing partition: %s\n", out.FailedPart)
	}
	return errViolation
}

func cmdTable2(args []string) error {
	fs := flag.NewFlagSet("table2", flag.ExitOnError)
	samples := fs.Int("samples", 100, "random tests per class (paper: 100)")
	rows := fs.Int("rows", 3, "threads per test")
	cols := fs.Int("cols", 3, "invocations per thread")
	seed := fs.Int64("seed", 1, "sampling seed")
	workers := fs.Int("workers", runtime.NumCPU(), "parallel workers per class (one test per worker)")
	exploreWorkers := fs.Int("explore-workers", 1, "shard each check's phase-2 exploration across this many workers")
	pre := fs.Bool("pre", true, "include the (Pre) variants")
	watchdog := fs.Duration("watchdog", 0, "abandon executions making no scheduler progress for this long (0 = off)")
	maxFailures := fs.Int("max-failures", 0, "contain up to N failed executions per check instead of aborting (0 = strict)")
	reductionSpec := fs.String("reduction", "none", "partial-order reduction for phase 2: none or sleep")
	jsonOut := fs.String("json", "", "also write machine-readable rows to FILE (conventionally "+bench.JSONFile+")")
	tflags := addTelemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	reduction, err := sched.ParseReduction(*reductionSpec)
	if err != nil {
		return err
	}
	tr, err := tflags.start("table2")
	if err != nil {
		return err
	}
	opts := bench.Table2Options{
		Samples: *samples, Rows: *rows, Cols: *cols, Seed: *seed,
		Workers: *workers, ExploreWorkers: *exploreWorkers, IncludePre: *pre,
		Watchdog: *watchdog, MaxFailures: *maxFailures, Reduction: reduction,
		Telemetry: tr.C,
	}
	report := func(class string) { fmt.Fprintf(os.Stderr, "checking %s...\n", class) }
	if tr.Prog != nil {
		// One unit per class; the extra slot tracks the class in flight and
		// its per-test counts. report runs between classes and Tick between
		// tests of one class, so the current-class variable is never written
		// concurrently with a read.
		classes := 0
		for _, e := range bench.Registry() {
			classes++
			if *pre && e.Pre != nil {
				classes++
			}
		}
		tr.Prog.SetTotal(classes)
		started := 0
		current := ""
		report = func(class string) {
			if started > 0 {
				tr.Prog.Step(1)
			}
			started++
			current = class
			tr.Prog.SetExtra(class)
			tr.Prog.Tick()
		}
		opts.Tick = func(done, total int) {
			tr.Prog.SetExtra(fmt.Sprintf("%s %d/%d tests", current, done, total))
			tr.Prog.Tick()
		}
	}
	table, err := bench.RunTable2(opts, report)
	if err == nil && tr.Prog != nil {
		tr.Prog.Step(1) // the last class has no successor to step it
	}
	if err = tr.finishAfter(err); err != nil {
		return err
	}
	bench.WriteTable2(os.Stdout, table)
	if *jsonOut != "" {
		if err := bench.WriteJSONRows(*jsonOut, bench.Table2JSON(table)); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
	}
	return nil
}

func cmdCauses(args []string) error {
	fs := flag.NewFlagSet("causes", flag.ExitOnError)
	verbose := fs.Bool("v", false, "print violation reports")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Printf("%-4s %-26s %-8s %-10s %s\n", "id", "class", "min dim", "kind", "scenario")
	fmt.Println(strings.Repeat("-", 110))
	for _, c := range bench.CauseCases() {
		res, err := core.Check(c.Subject, c.Test, core.Options{PreemptionBound: c.Bound})
		if err != nil {
			return err
		}
		threads, ops := c.Test.Dim()
		kind := "PASS?!"
		if res.Verdict == core.Fail {
			kind = map[core.ViolationKind]string{
				core.Nondeterminism: "nondet",
				core.NoWitness:      "value",
				core.StuckNoWitness: "stuck",
			}[res.Violation.Kind]
		}
		fmt.Printf("%-4s %-26s %dx%-6d %-10s %s\n", c.Cause, c.Subject.Name, threads, ops, kind, c.Note)
		if *verbose && res.Violation != nil {
			fmt.Println(indent(res.Violation.String()))
		}
	}
	return nil
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	class := fs.String("class", "", "class name (see 'lineup list')")
	samples := fs.Int("samples", 100, "random tests")
	rows := fs.Int("rows", 3, "threads per test")
	cols := fs.Int("cols", 3, "invocations per thread")
	seed := fs.Int64("seed", 1, "sampling seed")
	bound := fs.Int("pb", 0, "preemption bound (0 = class default)")
	workers := fs.Int("workers", runtime.NumCPU(), "parallel workers (one test per worker)")
	exploreWorkers := fs.Int("explore-workers", 1, "shard each check's phase-2 exploration across this many workers")
	shrink := fs.Bool("shrink", true, "minimize the first failing test")
	watchdog := fs.Duration("watchdog", 0, "abandon executions making no scheduler progress for this long (0 = off)")
	maxFailures := fs.Int("max-failures", 0, "contain up to N failed executions (panic/hang/leak) per test instead of aborting (0 = strict)")
	detectLeaks := fs.Bool("detect-leaks", false, "report goroutines that escape the scheduler and outlive an execution")
	reductionSpec := fs.String("reduction", "none", "partial-order reduction for phase 2: none or sleep")
	checkpointFile := fs.String("checkpoint", "", "save progress to FILE (atomically) after every completed test")
	resumeFile := fs.String("resume", "", "resume from a checkpoint FILE written by a previous -checkpoint run")
	witnessSpec := fs.String("witness", "spec", "phase-2 witness backend: spec (phase-1 lookup), monitor (model replay), or fast (specialized monitors, WGL fallback); monitor and fast require -model")
	modelName := fs.String("model", "", "sequential model for -witness monitor|fast: "+strings.Join(monitor.BuiltinNames(), ", "))
	tflags := addTelemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sub, pb, ok := findSubject(*class)
	if !ok {
		return fmt.Errorf("unknown class %q (try 'lineup list')", *class)
	}
	if *bound != 0 {
		pb = *bound
	}
	reduction, err := sched.ParseReduction(*reductionSpec)
	if err != nil {
		return err
	}
	witness, err := core.ParseWitness(*witnessSpec)
	if err != nil {
		return err
	}
	var witnessModel *monitor.Model
	if witness != core.WitnessSpec {
		if *modelName == "" {
			return fmt.Errorf("check: -witness %s requires -model (one of %s)", witness, strings.Join(monitor.BuiltinNames(), ", "))
		}
		witnessModel, ok = monitor.Builtin(*modelName)
		if !ok {
			return fmt.Errorf("check: unknown model %q (one of %s)", *modelName, strings.Join(monitor.BuiltinNames(), ", "))
		}
	} else if *modelName != "" {
		return fmt.Errorf("check: -model only applies with -witness monitor or -witness fast")
	}
	tr, err := tflags.start("check " + sub.Name)
	if err != nil {
		return err
	}
	copts := core.Options{
		PreemptionBound: pb,
		Workers:         *exploreWorkers,
		Watchdog:        *watchdog,
		MaxFailures:     *maxFailures,
		DetectLeaks:     *detectLeaks,
		Reduction:       reduction,
		WitnessSearch:   witness,
		MonitorModel:    witnessModel,
		Telemetry:       tr.C,
	}
	// The fast backend's hit/fallback split is worth a summary line even
	// when telemetry output is off, so make sure a collector exists.
	fastCol := tr.C
	if witness == core.WitnessFast && fastCol == nil {
		fastCol = telemetry.New()
		copts.Telemetry = fastCol
	}
	if *exploreWorkers > 1 {
		copts.ShardProgress = tr.shardProgress()
	}
	ropts := core.RandomOptions{
		Rows: *rows, Cols: *cols, Samples: *samples, Seed: *seed,
		Workers: *workers,
		Options: copts,
	}
	if tr.Prog != nil {
		tr.Prog.SetTotal(*samples)
		ropts.Progress = func(done, total int) { tr.Prog.SetUnits(done, total) }
	}
	if *resumeFile != "" {
		cp, err := core.LoadRandomCheckpoint(*resumeFile)
		if err != nil {
			return err
		}
		ropts.Resume = cp
		fmt.Fprintf(os.Stderr, "resuming from %s: %d of %d tests already checked\n",
			*resumeFile, len(cp.Tests), cp.Samples)
	}
	if *checkpointFile != "" {
		ropts.Checkpoint = func(cp *core.RandomCheckpoint) error {
			return cp.Save(*checkpointFile)
		}
	}
	sum, err := core.RandomCheck(sub, nil, ropts)
	if err = tr.finishAfter(err); err != nil {
		return err
	}
	fmt.Printf("%s: %d passed, %d failed (of %d sampled %dx%d tests, PB=%d)\n",
		sub.Name, sum.Passed, sum.Failed, *samples, *rows, *cols, pb)
	if witness == core.WitnessFast {
		fmt.Printf("fast monitor: %d histories decided directly, %d fell back to the Wing–Gong search\n",
			fastCol.FastHits.Load(), fastCol.FastFallbacks.Load())
	}
	if nf, kinds := countFailures(sum); nf > 0 {
		fmt.Printf("contained runtime failures: %d (%s)\n", nf, kinds)
	}
	fmt.Printf("phase 1: %.1f serial histories avg (max %d), %v avg\n",
		sum.SerialHistAvg, sum.SerialHistMax, sum.Phase1TimeAvg)
	fmt.Printf("phase 2: %v avg (passing), %v avg (failing), %d tests with stuck histories\n",
		sum.Phase2PassAvg, sum.Phase2FailAvg, sum.StuckTests)
	if reduction != sched.ReductionNone {
		pruned, dedup := 0, 0
		for _, r := range sum.Results {
			if r != nil {
				pruned += r.Phase2.Pruned
				dedup += r.Phase2.DedupHits
			}
		}
		fmt.Printf("reduction (%s): %d branches pruned, %d history-cache hits\n",
			reduction, pruned, dedup)
	}
	if sum.FirstFailure != nil {
		fmt.Println("\nfirst failing test:")
		fmt.Println(indent(sum.FirstFailure.Test.String()))
		if *shrink {
			min, res, err := core.Shrink(sub, sum.FirstFailure.Test, core.Options{PreemptionBound: pb})
			if err != nil {
				return err
			}
			threads, ops := min.Dim()
			fmt.Printf("shrunk to %dx%d:\n%s\n", threads, ops, indent(min.String()))
			fmt.Println(indent(res.Violation.String()))
		} else {
			fmt.Println(indent(sum.FirstFailure.Violation.String()))
		}
	}
	return nil
}

// findSubject resolves a class name against both registries: the Go-native
// subject corpus (internal/subjects — correct, (Pre) and (Relaxed) variants)
// and the Table 1 classes. It returns the subject and its class's default
// preemption bound.
func findSubject(name string) (*core.Subject, int, bool) {
	for _, e := range subjects.Registry() {
		for _, sub := range []*core.Subject{e.Subject, e.Pre, e.Relaxed} {
			if sub != nil && sub.Name == name {
				return sub, e.Bound, true
			}
		}
	}
	if sub, entry, ok := bench.Find(name); ok {
		return sub, entry.Bound, true
	}
	return nil, 0, false
}

// cmdGenerate runs coverage-guided test generation against one class: starting
// from the smallest pairwise tests over the invocation universe, it mutates
// corpus entries and keeps every mutant that touches a new (memory-kind,
// location) pair or produces a new phase-2 history, until a violation is found
// or the budget runs out. The seed is echoed in all output so any violation is
// reproducible bit-for-bit.
func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	class := fs.String("class", "", "class name (see 'lineup list')")
	seed := fs.Int64("seed", 1, "mutation seed (same seed + same class = same run)")
	budget := fs.Int("budget", 600, "maximum number of generated tests to check")
	corpusDir := fs.String("corpus-dir", "", "persist the accepted corpus as JSON files in DIR")
	bound := fs.Int("pb", 0, "preemption bound (0 = class default)")
	maxThreads := fs.Int("max-threads", 3, "maximum threads per generated test")
	maxOps := fs.Int("max-ops", 3, "maximum invocations per thread")
	consistencySpec := fs.String("consistency", "", "correctness criterion: linearizable (default), sequential, quiescent")
	keepGoing := fs.Bool("keep-going", false, "spend the whole budget even after a violation")
	tflags := addTelemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sub, pb, ok := findSubject(*class)
	if !ok {
		return fmt.Errorf("unknown class %q (try 'lineup list')", *class)
	}
	if *bound != 0 {
		pb = *bound
	}
	cons, err := core.ParseConsistency(*consistencySpec)
	if err != nil {
		return err
	}
	tr, err := tflags.start("generate " + sub.Name)
	if err != nil {
		return err
	}
	gopts := core.GenOptions{
		Options: core.Options{
			PreemptionBound: pb,
			Consistency:     cons,
			Telemetry:       tr.C,
		},
		Seed:       *seed,
		Budget:     *budget,
		MaxThreads: *maxThreads,
		MaxOps:     *maxOps,
		CorpusDir:  *corpusDir,
		KeepGoing:  *keepGoing,
	}
	if tr.Prog != nil {
		tr.Prog.SetTotal(*budget)
		gopts.Progress = func(done, total int) { tr.Prog.SetUnits(done, total) }
	}
	res, err := core.Generate(sub, gopts)
	if err = tr.finishAfter(err); err != nil {
		return err
	}
	fmt.Printf("%s: %d tests generated (seed=%d, PB=%d), %d accepted into the corpus\n",
		sub.Name, res.Tests, res.Seed, pb, res.Accepted)
	fmt.Printf("coverage: %d (kind,loc) pairs, %d distinct phase-2 histories; corpus size %d\n",
		res.CoveragePairs, res.CoverageHists, res.CorpusSize)
	if *corpusDir != "" {
		fmt.Printf("corpus persisted to %s\n", *corpusDir)
	}
	if res.Failed != nil {
		fmt.Printf("\nviolation found at test %d of %d (seed=%d — rerun with -seed %d to reproduce):\n",
			res.TestsToFailure, res.Tests, res.Seed, res.Seed)
		fmt.Println(indent(res.Failed.Test.String()))
		fmt.Println(indent(res.Failed.Violation.String()))
		return errViolation
	}
	if res.Exhausted {
		fmt.Printf("no violation within the budget (seed=%d); the class may still be incorrect\n", res.Seed)
	}
	return nil
}

// countFailures tallies the contained runtime failures across a summary's
// results, rendered as "panic=3 hung=1"-style kind counts.
func countFailures(sum *core.RandomSummary) (int, string) {
	counts := make(map[sched.FailureKind]int)
	total := 0
	for _, r := range sum.Results {
		if r == nil {
			continue
		}
		for _, f := range r.Failures {
			counts[f.Kind]++
			total++
		}
	}
	var parts []string
	for _, k := range []sched.FailureKind{sched.FailPanic, sched.FailHung, sched.FailLeak} {
		if counts[k] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, counts[k]))
		}
	}
	return total, strings.Join(parts, " ")
}

// fig1Test builds the Fig. 1 scenario on the CTP-like BlockingCollection.
func fig1Test() (*core.Subject, *core.Test) {
	sub, _, _ := bench.Find("BlockingCollection(Pre)")
	add := func(v int) core.Op {
		return core.Op{Method: "Add", Args: fmt.Sprint(v), Run: func(t *sched.Thread, o any) string {
			type adder interface{ Add(*sched.Thread, int) bool }
			o.(adder).Add(t, v)
			return "ok"
		}}
	}
	tryTake, _ := sub.FindOp("TryTake()")
	return sub, &core.Test{Rows: [][]core.Op{{add(200), tryTake}, {add(400), tryTake}}}
}

func cmdFig1() error {
	sub, m := fig1Test()
	fmt.Println("Fig. 1 — the CTP TryTake bug (lock acquire allowed to time out):")
	fmt.Println(indent(m.String()))
	res, err := core.Check(sub, m, core.Options{PreemptionBound: 2, KeepSpec: true})
	if err != nil {
		return err
	}
	if res.Verdict != core.Fail {
		return fmt.Errorf("expected a violation")
	}
	fmt.Println(indent(res.Violation.String()))
	fmt.Println("corrected BlockingCollection on the same test:")
	cur, _, _ := bench.Find("BlockingCollection")
	res2, err := core.Check(cur, m, core.Options{PreemptionBound: 2})
	if err != nil {
		return err
	}
	fmt.Printf("  verdict: %v\n", res2.Verdict)
	return nil
}

func cmdFig4() error {
	incOp := core.Op{Method: "Inc", Run: func(t *sched.Thread, o any) string {
		o.(interface{ Inc(*sched.Thread) }).Inc(t)
		return "ok"
	}}
	getOp := core.Op{Method: "Get", Run: func(t *sched.Thread, o any) string {
		return collections.Int(o.(interface{ Get(*sched.Thread) int }).Get(t))
	}}
	impl := &core.Subject{
		Name: "Counter2",
		New:  func(t *sched.Thread) any { return collections.NewCounter2(t) },
		Ops:  []core.Op{incOp, getOp},
	}
	model := &core.Subject{
		Name: "Counter",
		New:  func(t *sched.Thread) any { return collections.NewCounter(t) },
		Ops:  []core.Op{incOp, getOp},
	}
	m := &core.Test{Rows: [][]core.Op{{incOp, getOp}, {incOp}}}
	fmt.Println("Fig. 4 — Counter2 forgets to release the lock in Get:")
	fmt.Println(indent(m.String()))
	classic, err := core.CheckAgainstModel(impl, model, m, core.RefOptions{ClassicOnly: true})
	if err != nil {
		return err
	}
	fmt.Printf("  classic linearizability (Def. 1) vs counter spec:     %v\n", classic.Verdict)
	gen, err := core.CheckAgainstModel(impl, model, m, core.RefOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("  generalized linearizability (Def. 3) vs counter spec: %v\n", gen.Verdict)
	if gen.Violation != nil {
		fmt.Println(indent(gen.Violation.String()))
	}
	return nil
}

func cmdFig7() error {
	// The Fig. 7 test: Thread A = Add(200); Add(400), Thread B = Take();
	// TryTake() on the (correct-for-these-methods) CTP collection.
	sub, _, _ := bench.Find("BlockingCollection(Pre)")
	add := func(v int) core.Op {
		return core.Op{Method: "Add", Args: fmt.Sprint(v), Run: func(t *sched.Thread, o any) string {
			type adder interface{ Add(*sched.Thread, int) bool }
			o.(adder).Add(t, v)
			return "ok"
		}}
	}
	take, _ := sub.FindOp("Take()")
	tryTake, _ := sub.FindOp("TryTake()")
	m := &core.Test{Rows: [][]core.Op{{add(200), add(400)}, {take, tryTake}}}
	fmt.Println("Fig. 7 (top) — the test:")
	fmt.Println(indent(m.String()))
	res, err := core.Check(sub, m, core.Options{PreemptionBound: 2, KeepSpec: true})
	if err != nil {
		return err
	}
	fmt.Println("Fig. 7 (middle) — the observation file (phase 1):")
	if err := obsfile.Write(os.Stdout, res.Spec); err != nil {
		return err
	}
	fmt.Println("Fig. 7 (bottom) — the violation report, from the Fig. 1 test")
	fmt.Println("(under the TryLock timeout model the original Take/TryTake layout")
	fmt.Println("does not fail — see the substitution note in DESIGN.md):")
	if res.Violation == nil {
		fsub, fm := fig1Test()
		res, err = core.Check(fsub, fm, core.Options{PreemptionBound: 2})
		if err != nil {
			return err
		}
	}
	if res.Violation != nil && res.Violation.History != nil {
		return obsfile.WriteViolation(os.Stdout, res.Violation.History)
	}
	fmt.Println("  (no violation found)")
	return nil
}

func cmdFig9() error {
	cases := bench.CauseCases()
	var c bench.CauseCase
	for _, cc := range cases {
		if cc.Cause == bench.CauseA {
			c = cc
		}
	}
	fmt.Println("Fig. 9 — the ManualResetEvent CAS typo (root cause A):")
	fmt.Println(indent(c.Test.String()))
	res, err := core.Check(c.Subject, c.Test, core.Options{PreemptionBound: c.Bound})
	if err != nil {
		return err
	}
	if res.Verdict != core.Fail {
		return fmt.Errorf("expected a violation")
	}
	fmt.Println(indent(res.Violation.String()))
	fmt.Println("corrected ManualResetEvent on the same test:")
	res2, err := core.Check(c.Counterpart, c.Test, core.Options{PreemptionBound: c.Bound})
	if err != nil {
		return err
	}
	fmt.Printf("  verdict: %v\n", res2.Verdict)
	return nil
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	samples := fs.Int("samples", 10, "random tests per class")
	seed := fs.Int64("seed", 5, "sampling seed")
	workers := fs.Int("workers", 1, "shard each test's schedule exploration across this many workers")
	jsonOut := fs.String("json", "", "also write machine-readable rows to FILE (conventionally "+bench.JSONFile+")")
	if err := fs.Parse(args); err != nil {
		return err
	}
	copts := core.Options{PreemptionBound: 2, Workers: *workers}
	fmt.Println("Section 5.6 — Line-Up vs race detection vs conflict-serializability")
	fmt.Printf("%-26s %8s %8s %10s %10s\n", "Class", "races", "atomWarn", "warnTests", "lineupFail")
	fmt.Println(strings.Repeat("-", 70))
	var results []*bench.CompareResult
	var walls []time.Duration
	for _, e := range bench.Registry() {
		start := time.Now()
		res, err := bench.CompareRandom(e.Subject, 2, 2, *samples, *seed, copts)
		if err != nil {
			return err
		}
		results = append(results, res)
		walls = append(walls, time.Since(start))
		fmt.Printf("%-26s %8d %8d %10d %10d\n",
			res.Subject, len(res.Races), res.AtomicityWarnings, res.AtomicityTests, res.LineUpFailures)
	}
	if *jsonOut != "" {
		if err := bench.WriteJSONRows(*jsonOut, bench.CompareJSON(results, walls)); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
	}
	fmt.Println("\nsample serializability warnings (all false alarms on correct classes):")
	stack, _, _ := bench.Find("ConcurrentStack")
	res, err := bench.CompareRandom(stack, 2, 2, *samples, *seed, copts)
	if err != nil {
		return err
	}
	for _, w := range res.WarningSamples {
		fmt.Println(" ", w)
	}
	return nil
}

// parseWorkerList parses the comma-separated -workers argument of the
// parallel subcommand.
func parseWorkerList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty worker list")
	}
	return out, nil
}

// cmdParallel benchmarks the prefix-sharded parallel explorer against the
// sequential one on the Fig. 1/Fig. 9 subjects (and their fixed
// counterparts), asserting identical work and reporting wall-time speedups.
func cmdParallel(args []string) error {
	fs := flag.NewFlagSet("parallel", flag.ExitOnError)
	workers := fs.String("workers", "1,2,4,8", "comma-separated worker counts (1 = sequential baseline)")
	repeat := fs.Int("repeat", 3, "measurements per configuration (best wall time wins)")
	scale := fs.Bool("scale", false, "add the larger three-thread scalability workload (seconds, not ms)")
	reductionSpec := fs.String("reduction", "none", "partial-order reduction for the measured explorations: none or sleep")
	witnessSpec := fs.String("witness", "spec", "phase-2 witness backend for the measured explorations: spec, monitor, or fast")
	jsonOut := fs.String("json", "", "also write machine-readable rows to FILE (conventionally "+bench.JSONFile+")")
	tflags := addTelemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ws, err := parseWorkerList(*workers)
	if err != nil {
		return err
	}
	reduction, err := sched.ParseReduction(*reductionSpec)
	if err != nil {
		return err
	}
	witness, err := core.ParseWitness(*witnessSpec)
	if err != nil {
		return err
	}
	tr, err := tflags.start("parallel")
	if err != nil {
		return err
	}
	var report func(string)
	if tr.Prog != nil {
		report = func(s string) {
			tr.Prog.Step(1)
			tr.Prog.SetExtra(s)
			tr.Prog.Tick()
		}
	}
	rows, err := bench.RunParallel(bench.ParallelOptions{
		Workers: ws, Repeat: *repeat, Scale: *scale, Reduction: reduction,
		Witness: witness, Telemetry: tr.C,
	}, report)
	if err = tr.finishAfter(err); err != nil {
		return err
	}
	bench.WriteParallel(os.Stdout, rows)
	if *jsonOut != "" {
		if err := bench.WriteJSONRows(*jsonOut, bench.ParallelJSON(rows)); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
	}
	return nil
}

// cmdReduction measures full vs sleep-set-reduced exhaustive exploration on
// the directed cause cases, certifying identical verdicts and history sets
// while reporting the schedule-space shrinkage per class.
func cmdReduction(args []string) error {
	fs := flag.NewFlagSet("reduction", flag.ExitOnError)
	causesSpec := fs.String("causes", "", "comma-separated cause labels to measure (default: all, e.g. A,B',F)")
	skipUnbounded := fs.Bool("skip-unbounded", false, "measure only under each case's preemption bound")
	jsonOut := fs.String("json", "", "also write machine-readable rows to FILE (conventionally "+bench.JSONFile+")")
	tflags := addTelemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := bench.ReductionOptions{SkipUnbounded: *skipUnbounded}
	for _, f := range strings.Split(*causesSpec, ",") {
		if f = strings.TrimSpace(f); f != "" {
			opts.Causes = append(opts.Causes, bench.Cause(f))
		}
	}
	tr, err := tflags.start("reduction")
	if err != nil {
		return err
	}
	opts.Telemetry = tr.C
	var report func(string)
	if tr.Prog != nil {
		report = func(s string) {
			tr.Prog.Step(1)
			tr.Prog.SetExtra(s)
			tr.Prog.Tick()
		}
	}
	rows, err := bench.RunReduction(opts, report)
	if err = tr.finishAfter(err); err != nil {
		return err
	}
	bench.WriteReduction(os.Stdout, rows)
	if *jsonOut != "" {
		if err := bench.WriteJSONRows(*jsonOut, bench.ReductionJSON(rows)); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
	}
	return nil
}

func cmdAblate(args []string) error {
	fs := flag.NewFlagSet("ablate", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Println("Preemption-bound ablation: which directed root-cause tests fail at each bound")
	fmt.Printf("%-4s %-26s", "id", "class")
	bounds := []int{core.NoPreemptions, 1, 2, 3, 4}
	for _, b := range bounds {
		n := b
		if b == core.NoPreemptions {
			n = 0
		}
		fmt.Printf(" %6s", fmt.Sprintf("PB=%d", n))
	}
	fmt.Println(" (execs at class PB)")
	fmt.Println(strings.Repeat("-", 90))
	for _, c := range bench.CauseCases() {
		fmt.Printf("%-4s %-26s", c.Cause, c.Subject.Name)
		var execs int
		for _, b := range bounds {
			res, err := core.Check(c.Subject, c.Test, core.Options{PreemptionBound: b})
			if err != nil {
				return err
			}
			mark := "pass"
			if res.Verdict == core.Fail {
				mark = "FAIL"
			}
			if b == c.Bound {
				execs = res.Phase2.Executions
			}
			fmt.Printf(" %6s", mark)
		}
		fmt.Printf(" %8d\n", execs)
	}
	return nil
}

// cmdMemory runs the Section 5.7 relaxed-memory scan: every class's
// executions are checked for store-buffer SC-violation patterns.
func cmdMemory(args []string) error {
	fs := flag.NewFlagSet("memory", flag.ExitOnError)
	samples := fs.Int("samples", 6, "random tests per class")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Println("Section 5.7 — store-buffer (TSO) SC-violation scan")
	fmt.Printf("%-26s %8s %10s %10s\n", "Class", "tests", "execs", "violations")
	fmt.Println(strings.Repeat("-", 60))
	total := 0
	for _, e := range bench.Registry() {
		res, err := bench.SoberRandom(e.Subject, 2, 2, *samples, 9, core.Options{PreemptionBound: 2})
		if err != nil {
			return err
		}
		fmt.Printf("%-26s %8d %10d %10d\n", res.Subject, res.Tests, res.Executions, len(res.Violations))
		total += len(res.Violations)
		for _, v := range res.Violations {
			fmt.Println("   ", v)
		}
	}
	if total == 0 {
		fmt.Println()
		fmt.Println("no potential sequential-consistency violations found, matching the")
		fmt.Println("paper: the classes' cross-thread protocols use volatiles, interlocked")
		fmt.Println("operations and monitors throughout.")
	}
	return nil
}

// cmdRecord synthesizes the specification of one test (phase 1) and writes
// it as an observation file — the recording half of the Section 4.2
// regression workflow.
func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	class := fs.String("class", "", "class name (see 'lineup list')")
	testSpec := fs.String("test", "", `test matrix, e.g. "Enqueue(10) TryDequeue() / Count()"`)
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sub, _, ok := findSubject(*class)
	if !ok {
		return fmt.Errorf("unknown class %q (try 'lineup list')", *class)
	}
	m, err := bench.ParseTest(sub, *testSpec)
	if err != nil {
		return err
	}
	spec, stats, err := core.SynthesizeSpec(sub, m, core.Options{})
	if err != nil {
		return err
	}
	if *out != "" {
		// Atomic temp-file + rename: a crash mid-record never leaves a
		// truncated observation file behind for later 'lineup verify' runs.
		if err := obsfile.WriteFileAtomic(*out, spec); err != nil {
			return err
		}
	} else if err := obsfile.Write(os.Stdout, spec); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "recorded %d full and %d stuck serial histories (%d serial executions, %v)\n",
		stats.Histories, stats.Stuck, stats.Executions, stats.Duration.Round(time.Millisecond))
	return nil
}

// cmdVerify replays phase 2 of one test against a recorded observation file
// — the checking half of the regression workflow.
func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	class := fs.String("class", "", "class name (see 'lineup list')")
	testSpec := fs.String("test", "", `test matrix, e.g. "Enqueue(10) TryDequeue() / Count()"`)
	in := fs.String("obs", "", "observation file recorded with 'lineup record'")
	bound := fs.Int("pb", 2, "preemption bound")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sub, _, ok := findSubject(*class)
	if !ok {
		return fmt.Errorf("unknown class %q (try 'lineup list')", *class)
	}
	m, err := bench.ParseTest(sub, *testSpec)
	if err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	parsed, err := obsfile.Parse(f)
	if err != nil {
		return err
	}
	res, err := core.CheckAgainstSpec(sub, m, parsed.ToSpec(), core.Options{PreemptionBound: *bound})
	if err != nil {
		return err
	}
	fmt.Printf("verdict: %v (%d histories, %d stuck, %d schedules)\n",
		res.Verdict, res.Phase2.Histories, res.Phase2.Stuck, res.Phase2.Executions)
	if res.Violation != nil {
		fmt.Println(indent(res.Violation.String()))
		return errViolation
	}
	return nil
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n")
}
