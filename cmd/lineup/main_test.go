package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout redirects os.Stdout around fn and returns what it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput:\n%s", ferr, out)
	}
	return out
}

func TestCmdCauses(t *testing.T) {
	out := captureStdout(t, func() error { return cmdCauses(nil) })
	for _, want := range []string{"A ", "L ", "Fig. 9", "Fig. 1", "stuck", "value"} {
		if !contains(out, want) {
			t.Fatalf("causes output missing %q:\n%s", want, out)
		}
	}
	if contains(out, "PASS?!") {
		t.Fatalf("a directed cause test passed unexpectedly:\n%s", out)
	}
}

func TestCmdFig4(t *testing.T) {
	out := captureStdout(t, func() error { return cmdFig4() })
	if !contains(out, "classic linearizability (Def. 1) vs counter spec:     PASS") {
		t.Fatalf("classic verdict wrong:\n%s", out)
	}
	if !contains(out, "generalized linearizability (Def. 3) vs counter spec: FAIL") {
		t.Fatalf("generalized verdict wrong:\n%s", out)
	}
}

func TestCmdFig1(t *testing.T) {
	out := captureStdout(t, func() error { return cmdFig1() })
	if !contains(out, "violation") || !contains(out, "verdict: PASS") {
		t.Fatalf("fig1 output incomplete:\n%s", out)
	}
}

func TestCmdFig9(t *testing.T) {
	out := captureStdout(t, func() error { return cmdFig9() })
	if !contains(out, "stuck history") || !contains(out, "verdict: PASS") {
		t.Fatalf("fig9 output incomplete:\n%s", out)
	}
}

func TestCmdRecordVerifyRoundtrip(t *testing.T) {
	dir := t.TempDir()
	obs := filepath.Join(dir, "queue.obs")
	_ = captureStdout(t, func() error {
		return cmdRecord([]string{"-class", "ConcurrentQueue", "-test", "Enqueue(10) TryDequeue() / Count()", "-o", obs})
	})
	if _, err := os.Stat(obs); err != nil {
		t.Fatalf("observation file not written: %v", err)
	}
	out := captureStdout(t, func() error {
		return cmdVerify([]string{"-class", "ConcurrentQueue", "-test", "Enqueue(10) TryDequeue() / Count()", "-obs", obs})
	})
	if !contains(out, "verdict: PASS") {
		t.Fatalf("verify against own recording failed:\n%s", out)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
