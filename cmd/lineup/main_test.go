package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lineup/internal/core"
)

// captureStdout redirects os.Stdout around fn and returns what it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput:\n%s", ferr, out)
	}
	return out
}

func TestCmdCauses(t *testing.T) {
	out := captureStdout(t, func() error { return cmdCauses(nil) })
	for _, want := range []string{"A ", "L ", "Fig. 9", "Fig. 1", "stuck", "value"} {
		if !contains(out, want) {
			t.Fatalf("causes output missing %q:\n%s", want, out)
		}
	}
	if contains(out, "PASS?!") {
		t.Fatalf("a directed cause test passed unexpectedly:\n%s", out)
	}
}

func TestCmdFig4(t *testing.T) {
	out := captureStdout(t, func() error { return cmdFig4() })
	if !contains(out, "classic linearizability (Def. 1) vs counter spec:     PASS") {
		t.Fatalf("classic verdict wrong:\n%s", out)
	}
	if !contains(out, "generalized linearizability (Def. 3) vs counter spec: FAIL") {
		t.Fatalf("generalized verdict wrong:\n%s", out)
	}
}

func TestCmdFig1(t *testing.T) {
	out := captureStdout(t, func() error { return cmdFig1() })
	if !contains(out, "violation") || !contains(out, "verdict: PASS") {
		t.Fatalf("fig1 output incomplete:\n%s", out)
	}
}

func TestCmdFig9(t *testing.T) {
	out := captureStdout(t, func() error { return cmdFig9() })
	if !contains(out, "stuck history") || !contains(out, "verdict: PASS") {
		t.Fatalf("fig9 output incomplete:\n%s", out)
	}
}

func TestCmdRecordVerifyRoundtrip(t *testing.T) {
	dir := t.TempDir()
	obs := filepath.Join(dir, "queue.obs")
	_ = captureStdout(t, func() error {
		return cmdRecord([]string{"-class", "ConcurrentQueue", "-test", "Enqueue(10) TryDequeue() / Count()", "-o", obs})
	})
	if _, err := os.Stat(obs); err != nil {
		t.Fatalf("observation file not written: %v", err)
	}
	out := captureStdout(t, func() error {
		return cmdVerify([]string{"-class", "ConcurrentQueue", "-test", "Enqueue(10) TryDequeue() / Count()", "-obs", obs})
	})
	if !contains(out, "verdict: PASS") {
		t.Fatalf("verify against own recording failed:\n%s", out)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

// TestCmdCheckHardeningFlags exercises the containment flags end to end on
// a small clean run: watchdog armed, failure budget set, leak detection on.
// A correct class must pass with no contained failures reported.
func TestCmdCheckHardeningFlags(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdCheck([]string{
			"-class", "ConcurrentStack", "-samples", "3", "-rows", "2", "-cols", "2",
			"-workers", "1", "-watchdog", "30s", "-max-failures", "5", "-detect-leaks",
		})
	})
	if !contains(out, "3 passed, 0 failed") {
		t.Fatalf("hardened check on a correct class did not pass:\n%s", out)
	}
	if contains(out, "contained runtime failures") {
		t.Fatalf("clean run reported contained failures:\n%s", out)
	}
}

// TestCmdCheckCheckpointWrites verifies the -checkpoint flag records every
// completed test in a well-formed, resumable file.
func TestCmdCheckCheckpointWrites(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "ck.json")
	_ = captureStdout(t, func() error {
		return cmdCheck([]string{
			"-class", "ConcurrentStack", "-samples", "3", "-rows", "2", "-cols", "2",
			"-workers", "1", "-checkpoint", ck,
		})
	})
	cp, err := core.LoadRandomCheckpoint(ck)
	if err != nil {
		t.Fatalf("checkpoint unreadable: %v", err)
	}
	if cp.Samples != 3 || len(cp.Tests) != 3 {
		t.Fatalf("checkpoint records %d of %d tests, want 3 of 3", len(cp.Tests), cp.Samples)
	}
	if cp.Subject != "ConcurrentStack" {
		t.Fatalf("checkpoint subject = %q", cp.Subject)
	}
}

// captureStderr redirects os.Stderr around fn and returns what it printed.
func captureStderr(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stderr = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	fn()
	w.Close()
	os.Stderr = old
	return <-done
}

func TestRunUnknownSubcommand(t *testing.T) {
	var code int
	errOut := captureStderr(t, func() { code = run([]string{"frobnicate"}) })
	if code != 2 {
		t.Fatalf("unknown subcommand must exit 2, got %d", code)
	}
	if !contains(errOut, `unknown subcommand "frobnicate"`) {
		t.Fatalf("missing unknown-subcommand diagnostic:\n%s", errOut)
	}
	for _, c := range commands {
		if !contains(errOut, c.name) {
			t.Fatalf("usage listing missing %q:\n%s", c.name, errOut)
		}
	}
}

func TestRunWithoutArguments(t *testing.T) {
	var code int
	errOut := captureStderr(t, func() { code = run(nil) })
	if code != 2 {
		t.Fatalf("bare invocation must exit 2, got %d", code)
	}
	if !contains(errOut, "subcommands:") {
		t.Fatalf("bare invocation must print the usage table:\n%s", errOut)
	}
}

func TestUsageListsEveryCommand(t *testing.T) {
	var buf bytes.Buffer
	usage(&buf)
	out := buf.String()
	for _, c := range commands {
		if !contains(out, c.name) || !contains(out, c.synopsis) {
			t.Fatalf("usage missing %q (%q):\n%s", c.name, c.synopsis, out)
		}
	}
	if !contains(out, "monitor -trace FILE -model NAME") {
		t.Fatalf("usage missing the monitor invocation form:\n%s", out)
	}
}

// TestCmdCheckReductionFlag runs a small check with -reduction=sleep and
// expects the pruned/dedup counter line; the same run with -reduction=none
// must not print it, and a bogus strategy must be rejected before any work.
func TestCmdCheckReductionFlag(t *testing.T) {
	args := []string{
		"-class", "ConcurrentStack", "-samples", "3", "-rows", "2", "-cols", "2",
		"-workers", "1",
	}
	out := captureStdout(t, func() error {
		return cmdCheck(append(args, "-reduction", "sleep"))
	})
	if !contains(out, "3 passed, 0 failed") {
		t.Fatalf("reduced check on a correct class did not pass:\n%s", out)
	}
	if !contains(out, "reduction (sleep):") || !contains(out, "branches pruned") {
		t.Fatalf("missing reduction counters:\n%s", out)
	}
	out = captureStdout(t, func() error { return cmdCheck(args) })
	if contains(out, "reduction (") {
		t.Fatalf("unreduced run printed reduction counters:\n%s", out)
	}
	if err := cmdCheck(append(args, "-reduction", "bogus")); err == nil {
		t.Fatal("bogus -reduction value accepted")
	}
}

// TestCmdReduction smokes the reduction subcommand on one cheap cause and
// checks the rendered table certifies a shrunken schedule space.
func TestCmdReduction(t *testing.T) {
	jsonOut := filepath.Join(t.TempDir(), "red.json")
	out := captureStdout(t, func() error {
		return cmdReduction([]string{"-causes", "F", "-json", jsonOut})
	})
	for _, want := range []string{"Lazy(Pre)", "ratio", "pruned", "dedup"} {
		if !contains(out, want) {
			t.Fatalf("reduction output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatalf("json rows not written: %v", err)
	}
	if !contains(string(data), `"kind": "reduction"`) || !contains(string(data), `"reduction_ratio"`) {
		t.Fatalf("json rows malformed:\n%s", data)
	}
}

// TestCmdMonitorDetectsViolation feeds the monitor a hand-recorded Fig. 1
// shaped JSONL trace: Enqueue(10) completed strictly before TryDequeue was
// called, yet TryDequeue failed. The monitor must reject it with exit code 1
// and no schedule exploration.
func TestCmdMonitorDetectsViolation(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "fig1.jsonl")
	body := `{"t":0,"k":"call","op":"Enqueue(10)"}
{"t":0,"k":"ret","op":"Enqueue(10)","res":"ok"}
{"t":1,"k":"call","op":"TryDequeue()"}
{"t":1,"k":"ret","op":"TryDequeue()","res":"Fail"}
`
	if err := os.WriteFile(trace, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	var code int
	out := captureStdout(t, func() error {
		code = run([]string{"monitor", "-trace", trace, "-model", "queue"})
		return nil
	})
	if code != 1 {
		t.Fatalf("violation must exit 1, got %d\noutput:\n%s", code, out)
	}
	if !contains(out, "NOT linearizable") {
		t.Fatalf("missing verdict:\n%s", out)
	}
}

func TestCmdMonitorLinearizableTrace(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "ok.jsonl")
	body := `# overlapping ops: the witness reorders the enqueue first
{"t":1,"k":"call","op":"TryDequeue()"}
{"t":0,"k":"call","op":"Enqueue(10)"}
{"t":0,"k":"ret","op":"Enqueue(10)","res":"ok"}
{"t":1,"k":"ret","op":"TryDequeue()","res":"10"}
`
	if err := os.WriteFile(trace, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	var code int
	out := captureStdout(t, func() error {
		code = run([]string{"monitor", "-trace", trace, "-model", "queue", "-v"})
		return nil
	})
	if code != 0 {
		t.Fatalf("linearizable trace must exit 0, got %d\noutput:\n%s", code, out)
	}
	if !contains(out, "verdict: linearizable") || !contains(out, "witness:") {
		t.Fatalf("missing verdict/witness:\n%s", out)
	}
}

func TestCmdMonitorStuckTrace(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "stuck.jsonl")
	// Wait is stuck although Set completed last — the Fig. 9 shape.
	body := `{"t":1,"k":"call","op":"Set()"}
{"t":1,"k":"ret","op":"Set()","res":"ok"}
{"t":0,"k":"call","op":"Wait()"}
{"k":"stuck"}
`
	if err := os.WriteFile(trace, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	var code int
	out := captureStdout(t, func() error {
		code = run([]string{"monitor", "-trace", trace, "-model", "mre"})
		return nil
	})
	if code != 1 || !contains(out, "pending operation with no stuck serial witness") {
		t.Fatalf("generalized check must reject the lost wakeup (code %d):\n%s", code, out)
	}
	// The classic Definition 1 cannot see the lost wakeup.
	out = captureStdout(t, func() error {
		code = run([]string{"monitor", "-trace", trace, "-model", "mre", "-classic"})
		return nil
	})
	if code != 0 {
		t.Fatalf("classic check must accept the stuck trace (code %d):\n%s", code, out)
	}
}
