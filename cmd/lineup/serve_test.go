package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lineup/internal/monitor"
	"lineup/internal/obsfile"
	"lineup/internal/serve"
)

// genRegisterPartition generates one complete single-partition register
// history as raw trace events: results are assigned at return time by
// stepping a live model, so the partition is linearizable by construction.
// Threads are drawn from [base, base+3) so several partitions interleave in
// one globally well-formed trace.
func genRegisterPartition(rng *rand.Rand, key string, base, nOps int) []obsfile.TraceEvent {
	m := monitor.RegisterModel()
	state := m.Init()
	open := map[int]string{}
	const threads = 3
	var evs []obsfile.TraceEvent
	issued := 0
	for issued < nOps || len(open) > 0 {
		th := base + rng.Intn(threads)
		if op, busy := open[th]; busy && rng.Intn(2) == 0 {
			res, next, err := m.Step(state, op)
			if err != nil {
				panic(err)
			}
			state = next
			evs = append(evs, obsfile.TraceEvent{T: th, K: "ret", Op: op, Res: res})
			delete(open, th)
		} else if !busy && issued < nOps {
			var op string
			if rng.Intn(2) == 0 {
				op = fmt.Sprintf("Write(%d)", 1+rng.Intn(3))
			} else {
				op = "Read()"
			}
			evs = append(evs, obsfile.TraceEvent{T: th, K: "call", Op: op, P: key})
			open[th] = op
			issued++
		}
	}
	return evs
}

// genServeEvents generates the deterministic multi-partition register trace
// of the serve CLI tests: `partitions` independent partitions of `opsPer`
// operations each, interleaved. The last partition is corrupted (one return
// result is overwritten with an impossible value) so the trace is NOT
// linearizable.
func genServeEvents(t *testing.T, partitions, opsPer int) []obsfile.TraceEvent {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	parts := make([][]obsfile.TraceEvent, partitions)
	for i := range parts {
		parts[i] = genRegisterPartition(rng, fmt.Sprintf("r%d", i), i*10, opsPer)
	}
	// Corrupt one mid-partition return of the last partition.
	last := parts[partitions-1]
	corrupted := false
	for i := len(last) * 3 / 5; i < len(last); i++ {
		if last[i].K == "ret" {
			last[i].Res = "777"
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Fatal("generated partition has no return past the 60% mark")
	}
	var evs []obsfile.TraceEvent
	idx := make([]int, partitions)
	live := partitions
	for live > 0 {
		p := rng.Intn(partitions)
		if idx[p] >= len(parts[p]) {
			continue
		}
		evs = append(evs, parts[p][idx[p]])
		idx[p]++
		if idx[p] == len(parts[p]) {
			live--
		}
	}
	return evs
}

// encodeServeTrace writes the events to path in the given wire encoding
// ("jsonl" or "batch" frames) — the same sequence either way, so runs over
// the two files must agree bit for bit on verdicts.
func encodeServeTrace(t *testing.T, path, mode string, evs []obsfile.TraceEvent) {
	t.Helper()
	var buf bytes.Buffer
	if mode == "batch" {
		fw := obsfile.NewFrameWriter(&buf)
		for _, ev := range evs {
			if err := fw.WriteEvent(ev); err != nil {
				t.Fatal(err)
			}
		}
		if err := fw.Close(); err != nil {
			t.Fatal(err)
		}
	} else {
		enc := json.NewEncoder(&buf)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// writeServeTrace writes the fixture trace as JSONL and returns the total
// event count.
func writeServeTrace(t *testing.T, path string, partitions, opsPer int) int {
	t.Helper()
	evs := genServeEvents(t, partitions, opsPer)
	encodeServeTrace(t, path, "jsonl", evs)
	return len(evs)
}

// serveVerdictLines keeps only the deterministic report lines of a serve
// run — the final verdict and the per-partition failure lines — dropping
// the wall-clock-bearing stats lines.
func serveVerdictLines(out string) string {
	var keep []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "verdict:") || strings.HasPrefix(line, "  partition") {
			keep = append(keep, line)
		}
	}
	return strings.Join(keep, "\n")
}

// runServe runs the built binary and returns stdout; exit status 1 (the
// violation exit) is expected, anything else fails the test.
func runServe(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 1 {
			t.Fatalf("%v: %v\nstderr:\n%s", args, err, stderr.String())
		}
	}
	return stdout.String()
}

// TestServeCheckpointResumeAfterKill is the end-to-end acceptance check for
// the streaming service's durability, run once per wire encoding (JSONL and
// -batch binary frames over the same event sequence): a 'lineup serve
// -checkpoint' process is SIGKILLed mid-stream, then resumed with '-resume';
// the final verdicts must match the uninterrupted run's bit for bit (one
// partition of the fixture trace is corrupted, so the runs must agree on a
// violation), and the two encodings' verdicts must match each other.
func TestServeCheckpointResumeAfterKill(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real processes; skipped in -short mode")
	}
	bin := buildLineup(t)
	evs := genServeEvents(t, 4, 30000)
	total := len(evs)

	// Verdict lines of the first (jsonl) baseline; the batch baseline must
	// reproduce them exactly — the cross-encoding half of the gate.
	crossWant := ""
	for _, mode := range []string{"jsonl", "batch"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			trace := filepath.Join(dir, "trace."+mode)
			encodeServeTrace(t, trace, mode, evs)
			args := func(extra ...string) []string {
				a := []string{
					"serve", "-model", "register", "-trace", trace,
					"-window", "64", "-workers", "2",
				}
				if mode == "batch" {
					a = append(a, "-batch")
				}
				return append(a, extra...)
			}
			base := runServe(t, bin, args()...)
			want := serveVerdictLines(base)
			if !strings.Contains(want, "NOT linearizable") || !strings.Contains(want, `partition "r3"`) {
				t.Fatalf("baseline run missed the planted violation; fixture broken:\n%s", base)
			}
			if crossWant == "" {
				crossWant = want
			} else if want != crossWant {
				t.Fatalf("%s verdicts differ from jsonl verdicts:\n--- %s ---\n%s\n--- jsonl ---\n%s", mode, mode, want, crossWant)
			}

			ck := filepath.Join(dir, "serve.ckpt")
			victim := exec.Command(bin, args("-checkpoint", ck, "-checkpoint-every", "2048")...)
			if err := victim.Start(); err != nil {
				t.Fatalf("starting victim: %v", err)
			}
			// Kill -9 as soon as the first automatic checkpoint lands.
			deadline := time.Now().Add(60 * time.Second)
			for {
				if cp, err := serve.Load(ck); err == nil && cp.Tracker.Events >= 1 {
					break
				}
				if time.Now().After(deadline) {
					victim.Process.Kill()
					victim.Wait()
					t.Fatal("victim wrote no checkpoint within 60s")
				}
				time.Sleep(time.Millisecond)
			}
			if err := victim.Process.Kill(); err != nil {
				t.Fatalf("SIGKILL: %v", err)
			}
			victim.Wait() // expected to report the kill; the checkpoint is what matters

			cp, err := serve.Load(ck)
			if err != nil {
				t.Fatalf("checkpoint unreadable after SIGKILL (atomic write broken?): %v", err)
			}
			if cp.Tracker.Events >= int64(total) {
				t.Fatalf("victim checkpointed all %d events before the kill; fixture too fast", total)
			}
			t.Logf("killed %s victim after %d of %d events", mode, cp.Tracker.Events, total)

			resumed := runServe(t, bin, args("-checkpoint", ck, "-resume")...)
			if got := serveVerdictLines(resumed); got != want {
				t.Errorf("resumed verdicts differ from uninterrupted run:\n--- resumed ---\n%s\n--- uninterrupted ---\n%s", got, want)
			}
		})
	}
}

// TestServeResumeWindowMismatch asserts a checkpoint written under one
// window size cannot be resumed under another: window boundaries decide
// which cuts are retired, so silently mixing them could change verdict
// provenance.
func TestServeResumeWindowMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a real binary; skipped in -short mode")
	}
	bin := buildLineup(t)
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	writeServeTrace(t, trace, 2, 200)
	ck := filepath.Join(dir, "serve.ckpt")
	cmd := exec.Command(bin, "serve", "-model", "register", "-trace", trace,
		"-window", "16", "-checkpoint", ck)
	if out, err := cmd.CombinedOutput(); err != nil {
		if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
			t.Fatalf("checkpointed run: %v\n%s", err, out)
		}
	}
	out, err := exec.Command(bin, "serve", "-model", "register", "-trace", trace,
		"-window", "32", "-checkpoint", ck, "-resume").CombinedOutput()
	if err == nil {
		t.Fatalf("resume with a different window size must fail:\n%s", out)
	}
	if !strings.Contains(string(out), "window") {
		t.Fatalf("mismatch diagnostic does not mention the window:\n%s", out)
	}
}
