package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// distFixture is a failing 3-thread MSQueue(Pre) test big enough (~2s, 9 work
// units at depth 2) that a coordinator can be killed mid-run with units both
// completed and outstanding.
var distFixture = []string{
	"dist",
	"-class", "MSQueue(Pre)",
	"-test", "Enqueue(1) TryDequeue() TryPeek() / Enqueue(2) TryDequeue() IsEmpty() / TryPeek() IsEmpty()",
	"-workers", "1",
	"-depth", "2",
}

// distBaseline runs the fixture uninterrupted and returns its stdout — the
// verdict line plus the violation report, which is deterministic by
// construction (all timing-dependent lease stats go to stderr).
func distBaseline(t *testing.T, bin string) string {
	t.Helper()
	out, err := exec.Command(bin, distFixture...).Output()
	if err == nil {
		t.Fatalf("baseline dist run found no violation; fixture broken:\n%s", out)
	}
	if !strings.Contains(string(out), "verdict: FAIL") {
		t.Fatalf("baseline dist run: %v\n%s", err, out)
	}
	return string(out)
}

// TestDistCoordinatorKillResume is the CLI half of the coordinator-crash
// acceptance gate: a 'lineup dist -dir' coordinator is SIGKILLed after at
// least one unit is journaled done, then rerun with the same -dir; the
// resumed run must restore completed units from the journal (no re-run, no
// double-count) and print a byte-identical verdict and violation.
func TestDistCoordinatorKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real processes")
	}
	bin := buildLineup(t)
	want := distBaseline(t, bin)

	dir := filepath.Join(t.TempDir(), "coord")
	args := append(append([]string(nil), distFixture...), "-dir", dir)
	victim := exec.Command(bin, args...)
	if err := victim.Start(); err != nil {
		t.Fatalf("starting victim: %v", err)
	}

	// Wait for the manifest to journal at least one done unit, then kill -9.
	manifest := filepath.Join(dir, "manifest.json")
	deadline := time.Now().Add(60 * time.Second)
	for {
		data, err := os.ReadFile(manifest)
		if err == nil && strings.Contains(string(data), `"state": "done"`) {
			break
		}
		if time.Now().After(deadline) {
			victim.Process.Kill()
			victim.Wait()
			t.Fatal("no unit journaled done within 60s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	victim.Process.Kill()
	victim.Wait()

	resumed := exec.Command(bin, args...)
	var stderr strings.Builder
	resumed.Stderr = &stderr
	out, err := resumed.Output()
	if err == nil {
		t.Fatalf("resumed run found no violation:\n%s", out)
	}
	if string(out) != want {
		t.Fatalf("resumed verdict differs from uninterrupted run:\n--- resumed\n%s\n--- baseline\n%s", out, want)
	}
	if !strings.Contains(stderr.String(), " resumed") || strings.Contains(stderr.String(), "0 resumed") {
		t.Fatalf("resumed run restored no units from the journal:\n%s", stderr.String())
	}
}

// TestDistExecWorkerKill runs the coordinator with real worker processes and
// the built-in fault injection that SIGKILLs one worker right after its first
// heartbeat: the lease must be reassigned and the merged verdict must not
// change.
func TestDistExecWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real processes")
	}
	bin := buildLineup(t)
	want := distBaseline(t, bin)

	args := append(append([]string(nil), distFixture...),
		"-workers", "3", "-exec", "-kill-worker", "1", "-backoff", "5ms")
	cmd := exec.Command(bin, args...)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err == nil {
		t.Fatalf("exec run found no violation:\n%s", out)
	}
	if string(out) != want {
		t.Fatalf("worker-kill verdict differs from clean run:\n--- exec+kill\n%s\n--- baseline\n%s\nstderr:\n%s", out, want, stderr.String())
	}
	// The injected kill must actually have cost a lease: stderr accounting
	// keeps the test from passing vacuously if -kill-worker ever stops firing.
	if !strings.Contains(stderr.String(), "1 worker failures") {
		t.Fatalf("injected worker kill left no trace in lease accounting:\n%s", stderr.String())
	}
}

// TestDistWorkerModeBadJob pins the worker half's error discipline: a worker
// handed a nonexistent job file must exit nonzero with a readable error, not
// hang or crash — the coordinator depends on that to fail the lease fast.
func TestDistWorkerModeBadJob(t *testing.T) {
	if testing.Short() {
		t.Skip("builds real binaries")
	}
	bin := buildLineup(t)
	out, err := exec.Command(bin, "dist", "-worker", filepath.Join(t.TempDir(), "nope.json")).CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ProcessState.ExitCode() != 1 {
		t.Fatalf("want exit 1, got %v:\n%s", err, out)
	}
	if !strings.Contains(string(out), "reading job") {
		t.Fatalf("unhelpful worker error:\n%s", out)
	}
}
