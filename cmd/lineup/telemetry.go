package main

import (
	"flag"
	"fmt"
	"os"

	"lineup/internal/obsfile"
	"lineup/internal/sched"
	"lineup/internal/telemetry"
)

// telemetryFlags bundles the observability flags shared by the long-running
// subcommands (check, table2, parallel, reduction): a live progress line, a
// JSONL event-trace file, and an opt-in pprof/expvar HTTP endpoint. All three
// feed from one telemetry.Collector, created only when at least one sink is
// requested, so the default invocation carries no instrumentation at all.
type telemetryFlags struct {
	progress  *bool
	traceOut  *string
	pprofAddr *string
}

// addTelemetryFlags registers the shared flags on a subcommand's FlagSet.
func addTelemetryFlags(fs *flag.FlagSet) *telemetryFlags {
	return &telemetryFlags{
		progress:  fs.Bool("progress", false, "render a live progress line (work units, throughput, ETA) on stderr"),
		traceOut:  fs.String("trace-out", "", "write a JSONL telemetry event trace to FILE (written atomically on completion)"),
		pprofAddr: fs.String("pprof", "", "serve pprof and /debug/vars on this address (e.g. localhost:6060) for the duration of the run"),
	}
}

// enabled reports whether any telemetry sink was requested.
func (f *telemetryFlags) enabled() bool {
	return *f.progress || *f.traceOut != "" || *f.pprofAddr != ""
}

// telemetryRun is one live telemetry session: the collector to thread into
// core/bench options (nil when telemetry is off — a valid no-op sink) and the
// optional progress line. Callers must call finish exactly once when the run
// ends, on error paths too.
type telemetryRun struct {
	C    *telemetry.Collector
	Prog *telemetry.Progress

	flags *telemetryFlags
	srv   *telemetry.Server
}

// start opens the requested sinks. When no telemetry flag was given the
// returned run has a nil collector and progress line, both safe to pass
// along unconditionally.
func (f *telemetryFlags) start(label string) (*telemetryRun, error) {
	r := &telemetryRun{flags: f}
	if !f.enabled() {
		return r, nil
	}
	r.C = telemetry.New()
	if *f.progress {
		r.Prog = telemetry.NewProgress(os.Stderr, r.C, label)
	}
	if *f.pprofAddr != "" {
		srv, err := telemetry.Serve(*f.pprofAddr, r.C)
		if err != nil {
			return nil, fmt.Errorf("starting pprof endpoint: %w", err)
		}
		r.srv = srv
		fmt.Fprintf(os.Stderr, "telemetry: pprof and /debug/vars on http://%s\n", srv.Addr)
	}
	return r, nil
}

// shardProgress returns a core.Options.ShardProgress callback that folds the
// parallel explorer's shard counters into the live line, or nil when no
// progress line was requested.
func (r *telemetryRun) shardProgress() func(sched.ShardProgress) {
	if r.Prog == nil {
		return nil
	}
	p := r.Prog
	return func(sp sched.ShardProgress) {
		p.SetExtra(fmt.Sprintf("shards %d/%d, %d splits", sp.Done, sp.Shards, sp.Splits))
		p.Tick()
	}
}

// finish terminates the progress line, stops the HTTP endpoint, and writes
// the event trace. The trace goes through obsfile.AtomicWriteFile, so an
// interrupted write never leaves a torn trace file behind.
func (r *telemetryRun) finish() error {
	r.Prog.Finish()
	if r.srv != nil {
		_ = r.srv.Close()
	}
	if r.C != nil && *r.flags.traceOut != "" {
		if err := obsfile.AtomicWriteFile(*r.flags.traceOut, r.C.WriteTrace); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "telemetry: wrote event trace to %s\n", *r.flags.traceOut)
	}
	return nil
}

// finishAfter merges a run's finish error into the command's primary error:
// the command error wins, a trace-write failure surfaces otherwise.
func (r *telemetryRun) finishAfter(err error) error {
	if ferr := r.finish(); err == nil {
		return ferr
	}
	return err
}
