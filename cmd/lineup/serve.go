package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"lineup/internal/monitor"
	"lineup/internal/obsfile"
	"lineup/internal/serve"
	"lineup/internal/telemetry"
)

// cmdServe runs the streaming monitoring service: events are ingested live
// from a stdin pipe (and, with -http, an HTTP endpoint), routed by partition
// key to a worker pool, and checked incrementally in bounded memory. The
// final verdict is printed when the stream ends; a violation exits 1.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	trace := fs.String("trace", "-", "history stream ('-' for a stdin pipe)")
	batch := fs.Bool("batch", false, "read -trace as length-prefixed binary batch frames instead of JSONL (HTTP ingest negotiates per request via Content-Type)")
	modelName := fs.String("model", "", "sequential model: "+strings.Join(monitor.BuiltinNames(), ", "))
	workers := fs.Int("workers", runtime.NumCPU(), "checker worker pool size")
	window := fs.Int("window", 128, "completed operations per retired window")
	queue := fs.Int("queue", 1024, "per-worker event queue depth")
	bpSpec := fs.String("backpressure", "block", "full-queue policy: block (stall the producer) or shed (drop and poison the partition)")
	httpAddr := fs.String("http", "", "also accept events on this HTTP address (POST /ingest, GET /verdicts, GET /stats)")
	checkpoint := fs.String("checkpoint", "", "checkpoint service state to FILE (atomically)")
	every := fs.Int64("checkpoint-every", 0, "also checkpoint automatically every N ingested events (0 = only on shutdown)")
	resume := fs.Bool("resume", false, "resume from the -checkpoint file: replay the stream, skip what the checkpoint covers")
	classic := fs.Bool("classic", false, "classic Definition 1 treatment of pending operations at stream end")
	noMemo := fs.Bool("no-memo", false, "disable the memoized seen-set")
	noDedup := fs.Bool("no-dedup", false, "disable the shared window-verdict dedup cache")
	witnessSpec := fs.String("witness", "wgl", "witness search: wgl (incremental Wing–Gong) or fast (specialized streaming monitor, queue model only, converts to wgl outside its fragment)")
	tflags := addTelemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	useFast, err := parseMonitorWitness(*witnessSpec)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if *modelName == "" {
		return fmt.Errorf("serve: -model is required (one of %s)", strings.Join(monitor.BuiltinNames(), ", "))
	}
	model, ok := monitor.Builtin(*modelName)
	if !ok {
		return fmt.Errorf("serve: unknown model %q (one of %s)", *modelName, strings.Join(monitor.BuiltinNames(), ", "))
	}
	bp, err := serve.ParseBackpressure(*bpSpec)
	if err != nil {
		return err
	}
	cfg := serve.Config{
		Model:           model,
		Workers:         *workers,
		WindowOps:       *window,
		QueueDepth:      *queue,
		Backpressure:    bp,
		CheckpointPath:  *checkpoint,
		CheckpointEvery: *every,
		NoDedup:         *noDedup,
		FastMonitor:     useFast,
	}
	cfg.Monitor.NoMemo = *noMemo
	if *classic {
		cfg.Monitor.Mode = monitor.ModeClassic
	}
	if *resume {
		if *checkpoint == "" {
			return fmt.Errorf("serve: -resume requires -checkpoint")
		}
		if cfg, err = serve.Resume(cfg); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "serve: resuming from %s: skipping %d already-checked events\n",
			*checkpoint, cfg.SkipEvents)
	}
	tr, err := tflags.start("serve " + model.Name)
	if err != nil {
		return err
	}
	cfg.Telemetry = tr.C
	cfg.Monitor.Telemetry = tr.C
	// The fast path's hit/conversion split is worth a summary line even when
	// telemetry output is off, so make sure a collector exists.
	fastCol := tr.C
	if useFast && fastCol == nil {
		fastCol = telemetry.New()
		cfg.Telemetry = fastCol
		cfg.Monitor.Telemetry = fastCol
	}
	cfg.OnVerdict = func(v serve.PartitionVerdict) {
		fmt.Fprintf(os.Stderr, "serve: partition %q NOT linearizable after %d ops\n", v.Key, v.Ops)
	}
	s, err := serve.New(cfg)
	if err != nil {
		return tr.finishAfter(err)
	}
	if *httpAddr != "" {
		addr, err := s.StartHTTP(*httpAddr)
		if err != nil {
			_, _ = s.Close()
			return tr.finishAfter(err)
		}
		fmt.Fprintf(os.Stderr, "serve: ingest endpoint on http://%s\n", addr)
	}

	var r io.Reader = os.Stdin
	if *trace != "-" {
		f, err := os.Open(*trace)
		if err != nil {
			_, _ = s.Close()
			return tr.finishAfter(err)
		}
		defer f.Close()
		r = f
	}
	var src obsfile.EventSource = obsfile.NewRawReader(r)
	if *batch {
		src = obsfile.NewFrameReader(r)
	}
	start := time.Now()
	n, pumpErr := pumpStream(s, src, tr)
	sum, closeErr := s.Close()
	wall := time.Since(start)
	if err := tr.finishAfter(firstErr(pumpErr, closeErr)); err != nil {
		return err
	}
	printServeSummary(os.Stdout, sum, n, wall)
	if useFast {
		fmt.Printf("fast monitor: %d windows decided directly, %d partitions converted to the incremental checker\n",
			fastCol.FastHits.Load(), fastCol.FastFallbacks.Load())
	}
	if !sum.Linearizable {
		return errViolation
	}
	return nil
}

// parseMonitorWitness parses the monitor/serve -witness flag: the memoized
// Wing–Gong search (wgl, the default) or the specialized fast monitors.
func parseMonitorWitness(s string) (bool, error) {
	switch s {
	case "", "wgl":
		return false, nil
	case "fast":
		return true, nil
	default:
		return false, fmt.Errorf("unknown witness search %q (wgl or fast)", s)
	}
}

// monitorStream is the 'lineup monitor -window N' path: the same verdict as
// the batch monitor, computed by streaming the trace through the incremental
// windowed checker so peak memory is bounded by the window, not the trace.
func monitorStream(model *monitor.Model, r io.Reader, opts monitor.Options, window int, fastMon bool) error {
	col := telemetry.New()
	opts.Telemetry = col
	s, err := serve.New(serve.Config{Model: model, Monitor: opts, WindowOps: window, Telemetry: col, FastMonitor: fastMon})
	if err != nil {
		return err
	}
	if _, err := s.IngestReader(r); err != nil {
		_, _ = s.Close()
		return err
	}
	sum, err := s.Close()
	if err != nil {
		return err
	}
	st := sum.Stats
	var ops int64
	for _, v := range sum.Verdicts {
		ops += v.Ops
	}
	stuck := ""
	if st.Stuck {
		stuck = ", stuck"
	}
	fmt.Printf("checked %d operations (%d pending%s) against model %q\n", ops, st.OpenCalls, stuck, model.Name)
	snap := col.Snapshot()
	fmt.Printf("search: %d parts, %d nodes visited, %d seen-set hits (streaming, window %d, %d retired)\n",
		st.Partitions, snap.WitnessNodes, snap.MonitorMemoHits, window, st.WindowFlushes)
	if fastMon {
		fmt.Printf("fast monitor: %d windows decided directly, %d partitions converted to the incremental checker\n",
			snap.FastHits, snap.FastFallbacks)
	}
	if sum.Linearizable {
		fmt.Println("verdict: linearizable")
		return nil
	}
	fmt.Println("verdict: NOT linearizable")
	for _, v := range sum.Verdicts {
		if v.Err != "" {
			return fmt.Errorf("partition %q: %s", v.Key, v.Err)
		}
		if !v.Linearizable {
			if v.Key != "" {
				fmt.Printf("failing partition: %s\n", v.Key)
			}
			break
		}
	}
	return errViolation
}

// pumpStream feeds the source's events into the server, ticking the live
// progress line as it goes, and returns the count of raw events read. The
// source decides the wire encoding (JSONL or batch frames).
func pumpStream(s *serve.Server, src obsfile.EventSource, tr *telemetryRun) (int64, error) {
	var n int64
	for {
		ev, err := src.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := s.Ingest(ev); err != nil {
			return n, fmt.Errorf("line %d: %w", src.Line(), err)
		}
		n++
		if tr.Prog != nil && n%4096 == 0 {
			st := s.Stats()
			tr.Prog.SetExtra(fmt.Sprintf("%d events, %d ops checked, queues %v",
				st.EventsIngested, st.OpsChecked, st.QueueDepths))
			tr.Prog.Tick()
		}
	}
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// printServeSummary renders the final report. The stats lines carry
// wall-clock-dependent numbers; the verdict lines are deterministic and are
// what the kill/resume test compares.
func printServeSummary(w io.Writer, sum *serve.Summary, raw int64, wall time.Duration) {
	st := sum.Stats
	opsPerSec := ""
	if secs := wall.Seconds(); secs > 0 {
		opsPerSec = fmt.Sprintf(" (%.0f ops/s)", float64(st.OpsChecked)/secs)
	}
	fmt.Fprintf(w, "served %d events: %d ops checked across %d partitions in %v%s\n",
		st.EventsIngested, st.OpsChecked, st.Partitions, wall.Round(time.Millisecond), opsPerSec)
	fmt.Fprintf(w, "windows: %d retired, %d overflows; cache: %d hits, %d entries; max window %d events, frontier %d\n",
		st.WindowFlushes, st.WindowOverflows, st.CacheHits, st.CacheEntries, st.MaxWindowEvents, st.MaxFrontier)
	fmt.Fprintf(w, "backpressure: %d routed, %d shed; checkpoints: %d\n",
		st.EventsRouted, st.EventsShed, st.Checkpoints)
	var failed, shed, errored []serve.PartitionVerdict
	for _, v := range sum.Verdicts {
		switch {
		case v.Err != "":
			errored = append(errored, v)
		case v.Shed:
			shed = append(shed, v)
		case !v.Linearizable:
			failed = append(failed, v)
		}
	}
	if sum.Linearizable {
		fmt.Fprintln(w, "verdict: linearizable")
	} else {
		fmt.Fprintf(w, "verdict: NOT linearizable (%d of %d partitions)\n", len(failed)+len(errored), len(sum.Verdicts))
	}
	for _, v := range failed {
		fmt.Fprintf(w, "  partition %q: NOT linearizable (%d ops, %d windows)\n", v.Key, v.Ops, v.Windows)
	}
	for _, v := range errored {
		fmt.Fprintf(w, "  partition %q: check error: %s\n", v.Key, v.Err)
	}
	for _, v := range shed {
		fmt.Fprintf(w, "  partition %q: shed (verdict withheld; %d ops seen)\n", v.Key, v.Ops)
	}
}
