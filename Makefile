# Tier-1 gate and friends. `make check` is what CI (and reviewers) run.

GO ?= go

.PHONY: check check-race build vet test race bench fuzz clean

check: build vet test fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-enabled pass over the packages that actually spin up goroutines:
# the scheduler, the core checkers (parallel RandomCheck workers), the
# fault-injection containment harness, and the monitor (parallel partition
# search). -short skips the long sweeps.
race:
	$(GO) test -race -short ./internal/sched ./internal/core ./internal/faultinject ./internal/monitor ./internal/bench

# Short coverage-guided fuzz pass over the external input parser (the JSONL
# trace reader); the seed corpus plus a few seconds of mutation on every
# `make check` keeps crash regressions out of the hot parsing path.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzReadTrace -fuzztime=5s ./internal/obsfile

# Full race-enabled pass over every package (much slower than `race`;
# exercises the prefix-sharded parallel explorer end to end). The bench
# sweeps run for several minutes even uninstrumented, hence the timeout.
check-race:
	$(GO) test -race -timeout=60m ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

clean:
	$(GO) clean ./...
	rm -f BENCH_lineup.json
