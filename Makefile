# Tier-1 gate and friends. `make check` is what CI (and reviewers) run.

GO ?= go

.PHONY: check check-race build vet test race serve-smoke subjects-smoke dist-smoke fastmon-smoke bench bench-reduction bench-serve bench-telemetry bench-generate bench-dist bench-fastmon fuzz clean

check: build vet test serve-smoke subjects-smoke dist-smoke fastmon-smoke fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-enabled pass over the packages that actually spin up goroutines:
# the scheduler, the core checkers (parallel RandomCheck workers), the
# fault-injection containment harness, and the monitor (parallel partition
# search). -short skips the long sweeps.
race:
	$(GO) test -race -short ./internal/sched ./internal/core ./internal/faultinject ./internal/monitor ./internal/serve ./internal/bench

# Race-enabled smoke of the streaming service: the full internal/serve suite
# (worker pool, backpressure, checkpoint/resume, HTTP ingest) plus the bench
# load generator in its quick mode. Part of `make check`: the service is the
# one subsystem whose whole job is cross-goroutine handoff.
serve-smoke:
	$(GO) test -race -run 'TestServe' ./internal/serve ./internal/bench

# Race-enabled smoke of the Go-native subject corpus: the directed
# strict/Pre/Relaxed verdict tests for every family under the real Go race
# detector, so a corpus subject whose synchronization is broken at the Go
# level (not just at the modeled vsync level) fails loudly. Part of
# `make check`.
subjects-smoke:
	$(GO) test -race -run 'TestRegistry|TestStrictSubjectsPass|TestPreSubjectsFail|TestRelaxedSubjects' ./internal/subjects

# Race-enabled smoke of the fault-tolerant distributed coordinator: the full
# internal/dist suite (lease grants/expiry, randomized worker crash/hang/stall
# injection, coordinator crash resume, poisoning) plus the bench scaling gate
# in its quick mode — a small class at 3 workers with one injected worker
# kill, merged result required bit-identical to the sequential check. Part of
# `make check`: the coordinator is pure cross-goroutine handoff.
dist-smoke:
	$(GO) test -race -run 'TestDist' ./internal/dist ./internal/bench

# Smoke of the specialized fast monitors: the full internal/monitor/fast
# suite, the explorer-driven bit-identity property suite (fast+fallback vs
# WGL vs the naive search vs the phase-1 spec), the WitnessFast end-to-end
# path, and the crossover benchmark in its quick mode. Part of `make check`:
# the fast monitors must never disagree with the search they replace.
fastmon-smoke:
	$(GO) test ./internal/monitor/fast
	$(GO) test -run 'TestFastBackendBitIdentical|TestFastWitnessEndToEnd|TestFastmon' ./internal/bench

# Short coverage-guided fuzz pass over the external input parsers (the batch
# JSONL trace reader, the incremental stream reader, and the binary batch
# frame codec) and the test-matrix mutator (well-formedness + schedule
# replayability of every mutant); the seed corpus plus a few seconds of
# mutation on every `make check` keeps crash regressions out of the hot paths.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzReadTrace -fuzztime=5s ./internal/obsfile
	$(GO) test -run='^$$' -fuzz=FuzzStreamReader -fuzztime=5s ./internal/obsfile
	$(GO) test -run='^$$' -fuzz=FuzzBatchFrame -fuzztime=5s ./internal/obsfile
	$(GO) test -run='^$$' -fuzz=FuzzMutate -fuzztime=5s ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzFastMonitor -fuzztime=5s ./internal/monitor/fast

# Full race-enabled pass over every package (much slower than `race`;
# exercises the prefix-sharded parallel explorer end to end). The bench
# sweeps run for several minutes even uninstrumented, hence the timeout.
check-race:
	$(GO) test -race -timeout=60m ./...

# `make check` (via the test target) also runs the telemetry-overhead smoke
# benchmark (TestTelemetryOverheadBaseline in its quick mode): a
# milliseconds-scale off-vs-on pair that proves the instrumentation
# machinery and the observe-only contract on every tier-1 run.
bench: bench-telemetry
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Regenerate the kind=="reduction" rows of BENCH_lineup.json: the full
# full-vs-reduced sweep over every directed cause case (bounded plus
# unbounded passes). Fails without writing if any class's verdict drifts
# from the committed baseline. The quick smoke subset of the same test runs
# on every `make check` via `go test ./...`.
bench-reduction:
	LINEUP_BENCH_FULL=1 LINEUP_UPDATE_BENCH=1 $(GO) test -run=TestReductionBaseline -v -timeout=30m ./internal/bench

# Regenerate the kind=="serve" rows of BENCH_lineup.json: two row families.
# TestServeBaseline measures end-to-end checking throughput (>=1.2M checked
# operations per run, at 1 and 4 checker workers); TestServeIngestBaseline
# measures the ingest path alone (checker pool held parked) over jsonl-vs-
# batch wire encodings at 1 and 4 concurrent connections, gated on batch x 4
# clearing 3x the single-connection JSONL rate. Fails without writing if any
# verdict drifts from linearizable or the event accounting does not balance.
bench-serve:
	LINEUP_BENCH_FULL=1 LINEUP_UPDATE_BENCH=1 $(GO) test -run='TestServeBaseline|TestServeIngestBaseline' -v -timeout=30m ./internal/bench

# Regenerate the kind=="telemetry" rows of BENCH_lineup.json: telemetry
# off-vs-on wall times of the -scale workload (~80k schedules) at 1 and 4
# workers, best-of-3, gated at the acceptance overhead ceiling. Fails
# without writing if enabling the collector changes any verdict or count.
bench-telemetry:
	LINEUP_BENCH_FULL=1 LINEUP_UPDATE_BENCH=1 $(GO) test -run=TestTelemetryOverheadBaseline -v -timeout=30m ./internal/bench

# Regenerate the kind=="generate" rows of BENCH_lineup.json: coverage-guided
# generation vs uniform random sampling on every defect-seeded subject of the
# Go-native corpus, same seed and test budget, recording tests-to-first-
# violation and wall time. Fails without writing if the guided strategy
# misses any seeded bug within the budget. The quick smoke subset of the same
# test runs on every `make check` via `go test ./...`.
bench-generate:
	LINEUP_BENCH_FULL=1 LINEUP_UPDATE_BENCH=1 $(GO) test -run=TestGenerateBaseline -v -timeout=30m ./internal/bench

# Regenerate the kind=="dist" rows of BENCH_lineup.json: the fault-tolerant
# coordinator on a 3-thread workload at 1, 2, and 4 workers with injected
# worker crashes, recording units, kills absorbed, lease retries, and wall
# time. Fails without writing if any merged result diverges from the
# sequential exhaustive check.
bench-dist:
	LINEUP_BENCH_FULL=1 LINEUP_UPDATE_BENCH=1 $(GO) test -run=TestDistBaseline -v -timeout=30m ./internal/bench

# Regenerate the kind=="fastmon" rows of BENCH_lineup.json: the specialized
# monitors vs the memoized unpartitioned Wing–Gong search on unambiguous
# per-type workloads, lengths 10^2 .. 10^6 (WGL is skipped once a run blows
# the 2s budget — it is quadratic on these shapes). Fails without writing if
# any verdict disagrees or any type misses the >=10x speedup at >=10^4.
bench-fastmon:
	LINEUP_BENCH_FULL=1 LINEUP_UPDATE_BENCH=1 $(GO) test -run=TestFastmonBaseline -v -timeout=60m ./internal/bench

clean:
	$(GO) clean ./...
	rm -f BENCH_lineup.json
