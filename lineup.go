package lineup

import (
	"context"
	"io"
	"math/rand"

	"lineup/internal/core"
	"lineup/internal/dist"
	"lineup/internal/history"
	"lineup/internal/monitor"
	"lineup/internal/obsfile"
	"lineup/internal/sched"
	"lineup/internal/serve"
	"lineup/internal/telemetry"
)

// Core vocabulary, re-exported from the implementation packages so that
// library users program against the stable top-level API.
type (
	// Thread is the handle of a logical thread under the deterministic
	// scheduler; every instrumented operation takes the current *Thread.
	Thread = sched.Thread
	// Op is one invocation of the object under test.
	Op = core.Op
	// Test is a finite test: a matrix of invocations with optional initial
	// and final sequences (Sections 3.1 and 4.3).
	Test = core.Test
	// Subject is an implementation under test.
	Subject = core.Subject
	// Options configures Check.
	Options = core.Options
	// RefOptions configures CheckAgainstModel.
	RefOptions = core.RefOptions
	// AutoOptions configures AutoCheck.
	AutoOptions = core.AutoOptions
	// RandomOptions configures RandomCheck.
	RandomOptions = core.RandomOptions
	// Result is the outcome of a check.
	Result = core.Result
	// RandomSummary aggregates a RandomCheck run.
	RandomSummary = core.RandomSummary
	// AutoResult is the outcome of a bounded AutoCheck run.
	AutoResult = core.AutoResult
	// Violation describes a failed check.
	Violation = core.Violation
	// Verdict is Pass or Fail.
	Verdict = core.Verdict
	// ViolationKind classifies a violation.
	ViolationKind = core.ViolationKind
	// PhaseStats carries per-phase measurements.
	PhaseStats = core.PhaseStats
	// ShardProgress is a progress snapshot of the prefix-sharded parallel
	// explorer selected by Options.Workers > 1; Options.ShardProgress
	// receives one after every shard event.
	ShardProgress = sched.ShardProgress
	// FailureKind classifies a contained runtime failure (panic/hung/leak).
	FailureKind = sched.FailureKind
	// RuntimeFailure is one contained execution failure recorded in
	// Result.Failures when Options.MaxFailures > 0.
	RuntimeFailure = core.RuntimeFailure
	// TooManyFailuresError aborts a check whose contained failures exceeded
	// Options.MaxFailures.
	TooManyFailuresError = core.TooManyFailuresError
	// RandomCheckpoint is the resumable on-disk state of a RandomCheck run
	// (RandomOptions.Checkpoint / RandomOptions.Resume).
	RandomCheckpoint = core.RandomCheckpoint
	// TestCheckpoint is the per-test record inside a RandomCheckpoint.
	TestCheckpoint = core.TestCheckpoint
	// Reduction selects the partial-order reduction strategy of
	// Options.Reduction; verdicts and violations are bit-identical with
	// reduction on and off, only the schedule counts drop.
	Reduction = sched.Reduction
	// Telemetry collects low-overhead counters, phase spans, and an event
	// trace from a run when assigned to Options.Telemetry (see package
	// telemetry). It is observe-only: enabling it cannot change any verdict
	// or statistic reported in Result.
	Telemetry = telemetry.Collector
	// TelemetrySnap is a moment-in-time copy of every telemetry counter.
	TelemetrySnap = telemetry.Snap
)

// NewTelemetry creates an empty telemetry collector; assign it to
// Options.Telemetry (one collector may be shared across tests and phases)
// and read it with Snapshot, Spans, or WriteTrace when the run completes.
func NewTelemetry() *Telemetry { return telemetry.New() }

// Failure kinds for RuntimeFailure.Kind and Outcome classification.
const (
	// FailNone means the execution suffered no runtime failure.
	FailNone = sched.FailNone
	// FailPanic means implementation code panicked.
	FailPanic = sched.FailPanic
	// FailHung means the watchdog abandoned a non-cooperating execution.
	FailHung = sched.FailHung
	// FailLeak means goroutines escaped the scheduler and outlived the
	// execution.
	FailLeak = sched.FailLeak
)

// Verdicts.
const (
	// Pass means no violation was found for the test.
	Pass = core.Pass
	// Fail proves the subject is not deterministically linearizable.
	Fail = core.Fail
)

// Violation kinds.
const (
	// Nondeterminism: two serial histories diverge after a call (phase 1).
	Nondeterminism = core.Nondeterminism
	// NoWitness: a complete concurrent history has no serial witness.
	NoWitness = core.NoWitness
	// StuckNoWitness: a stuck history has an unjustified pending operation.
	StuckNoWitness = core.StuckNoWitness
)

// Preemption-bound sentinels for Options.PreemptionBound.
const (
	// DefaultBound is the paper's CHESS default of two preemptions.
	DefaultBound = core.DefaultBound
	// Unbounded disables preemption bounding.
	Unbounded = core.Unbounded
	// NoPreemptions allows only voluntary context switches.
	NoPreemptions = core.NoPreemptions
)

// Reduction strategies for Options.Reduction.
const (
	// ReductionNone explores the full preemption-bounded schedule tree.
	ReductionNone = sched.ReductionNone
	// ReductionSleep prunes redundant interleavings with sleep sets.
	ReductionSleep = sched.ReductionSleep
)

// ParseReduction parses the CLI spelling ("none" or "sleep") of a reduction
// strategy.
func ParseReduction(s string) (Reduction, error) { return sched.ParseReduction(s) }

// Check runs the two-phase Check(X, m) of Fig. 5 on one test.
func Check(sub *Subject, m *Test, opts Options) (*Result, error) {
	return core.Check(sub, m, opts)
}

// CheckAgainstModel synthesizes the specification from a reference model
// (phase 1) and checks the implementation's concurrent executions against
// it (phase 2); RefOptions.ClassicOnly selects the original Definition 1
// instead of the blocking-aware Definition 3.
func CheckAgainstModel(impl, model *Subject, m *Test, opts RefOptions) (*Result, error) {
	return core.CheckAgainstModel(impl, model, m, opts)
}

// AutoCheck enumerates tests systematically (Fig. 6), bounded by opts.
func AutoCheck(sub *Subject, opts AutoOptions) (*AutoResult, error) {
	return core.AutoCheck(sub, opts)
}

// RandomCheck samples random test matrices (Fig. 8), the evaluation mode of
// the paper.
func RandomCheck(sub *Subject, universe []Op, opts RandomOptions) (*RandomSummary, error) {
	return core.RandomCheck(sub, universe, opts)
}

// Shrink minimizes a failing test to a 1-minimal failing matrix.
func Shrink(sub *Subject, m *Test, opts Options) (*Test, *Result, error) {
	return core.Shrink(sub, m, opts)
}

// Monitor vocabulary, re-exported from internal/monitor: the standalone
// witness search over recorded histories (Section 4 generalized to traces
// captured outside the deterministic scheduler).
type (
	// History is a recorded concurrent history of calls and returns.
	History = history.History
	// Model is an executable sequential specification for the monitor.
	Model = monitor.Model
	// MonitorOptions configures CheckHistory.
	MonitorOptions = monitor.Options
	// MonitorMode selects classic (Def. 1) or generalized (Def. 3) checking.
	MonitorMode = monitor.Mode
	// MonitorOutcome is the verdict of a monitor run, with search statistics
	// and, when linearizable, a serial witness.
	MonitorOutcome = monitor.Outcome
	// WitnessStep is one operation of a serial witness.
	WitnessStep = monitor.WitnessStep
	// WitnessSearch selects the phase-2 witness backend of Options.
	WitnessSearch = core.WitnessSearch
)

// Monitor modes.
const (
	// MonitorAuto picks the definition from the history's shape.
	MonitorAuto = monitor.ModeAuto
	// MonitorClassic forces Definition 1 (pending ops may be dropped).
	MonitorClassic = monitor.ModeClassic
	// MonitorGeneralized forces Definition 3 (pending ops must be justified).
	MonitorGeneralized = monitor.ModeGeneralized
)

// Witness-search backends for Options.WitnessSearch.
const (
	// WitnessSpec answers witness queries from the phase-1 serial history set.
	WitnessSpec = core.WitnessSpec
	// WitnessMonitor answers them by replaying Options.MonitorModel.
	WitnessMonitor = core.WitnessMonitor
)

// CheckHistory decides whether one recorded history is linearizable with
// respect to the executable model, with no schedule exploration.
func CheckHistory(m *Model, h *History, opts MonitorOptions) (*MonitorOutcome, error) {
	return monitor.Check(m, h, opts)
}

// CheckWithMonitor is CheckAgainstModel with the phase-2 witness queries
// answered by the executable model instead of phase-1 enumeration.
func CheckWithMonitor(sub *Subject, model *Model, m *Test, opts RefOptions) (*Result, error) {
	return core.CheckWithMonitor(sub, model, m, opts)
}

// BuiltinModel looks up a named executable model (queue, stack, set,
// register, counter, mre); ok is false for unknown names.
func BuiltinModel(name string) (*Model, bool) { return monitor.Builtin(name) }

// BuiltinModelNames lists the registered executable models.
func BuiltinModelNames() []string { return monitor.BuiltinNames() }

// ReadTrace parses the JSONL history-trace format of `lineup monitor`:
// one {"t":thread,"k":"call"|"ret"|"stuck","op":...,"res":...} object per
// line, "#" comment lines allowed.
func ReadTrace(r io.Reader) (*History, error) { return obsfile.ReadTrace(r) }

// WriteTrace writes the history in the JSONL history-trace format.
func WriteTrace(w io.Writer, h *History) error { return obsfile.WriteTrace(w, h) }

// WriteTraceFile writes the history to path atomically (temp file + rename):
// a crash mid-write never leaves a torn trace behind.
func WriteTraceFile(path string, h *History) error { return obsfile.WriteTraceFile(path, h) }

// LoadRandomCheckpoint reads a checkpoint written via
// RandomOptions.Checkpoint and RandomCheckpoint.Save.
func LoadRandomCheckpoint(path string) (*RandomCheckpoint, error) {
	return core.LoadRandomCheckpoint(path)
}

// Relaxed-consistency and coverage-guided-generation vocabulary, re-exported
// from internal/core.
type (
	// Consistency selects the correctness criterion of Options.Consistency:
	// strict linearizability (default) or one of the relaxations checked
	// against the same phase-1 specification.
	Consistency = core.Consistency
	// Coverage accumulates the exploration-coverage signal — distinct
	// (memory-kind, location) pairs and distinct phase-2 canonical histories
	// — across checks when assigned to Options.Coverage.
	Coverage = core.Coverage
	// GenOptions configures Generate.
	GenOptions = core.GenOptions
	// GenResult is the outcome of a Generate run.
	GenResult = core.GenResult
	// Mutator applies seeded random matrix mutations (op replacement, swaps,
	// insertion/deletion, argument perturbation, thread reshaping).
	Mutator = core.Mutator
)

// Consistency criteria for Options.Consistency.
const (
	// Linearizability is the strict criterion of the paper.
	Linearizability = core.Linearizability
	// SequentialConsistency only requires a serial witness over some
	// reordering that preserves per-thread order.
	SequentialConsistency = core.SequentialConsistency
	// QuiescentConsistency only requires the order of operations separated
	// by a quiescent point to be preserved.
	QuiescentConsistency = core.QuiescentConsistency
)

// ParseConsistency parses the CLI spelling of a consistency criterion
// ("linearizable", "sequential"/"sc", "quiescent"/"qc").
func ParseConsistency(s string) (Consistency, error) { return core.ParseConsistency(s) }

// NewCoverage creates an empty coverage accumulator for Options.Coverage.
func NewCoverage() *Coverage { return core.NewCoverage() }

// Generate runs coverage-guided test generation: starting from the smallest
// pairwise tests over the subject's invocation universe, it mutates corpus
// entries with a seeded RNG and keeps every mutant whose check touches a new
// (memory-kind, location) pair or produces a new phase-2 history, until a
// violation is found or the budget is exhausted. Same seed, same subject,
// same options — bit-identical run.
func Generate(sub *Subject, opts GenOptions) (*GenResult, error) {
	return core.Generate(sub, opts)
}

// NewMutator creates a seeded matrix mutator over an invocation universe;
// Generate uses one internally, and tests can drive it directly.
func NewMutator(universe []Op, maxRows, maxCols int, rng *rand.Rand) *Mutator {
	return core.NewMutator(universe, maxRows, maxCols, rng)
}

// TestFromNames reconstructs a test matrix from rows of rendered invocation
// names (the persisted corpus format of GenOptions.CorpusDir), resolving each
// name in the subject's universe.
func TestFromNames(sub *Subject, rows [][]string) (*Test, error) {
	return core.TestFromNames(sub, rows)
}

// Streaming-service vocabulary, re-exported from internal/serve and the
// streaming half of internal/obsfile: a long-running monitor that ingests
// live JSONL history events, routes them by partition key to a worker pool,
// and checks each partition incrementally in bounded memory, with verdicts
// identical to batch CheckHistory on the same trace.
type (
	// StreamEvent is one validated, partition-resolved event of a live
	// JSONL history stream.
	StreamEvent = obsfile.StreamEvent
	// StreamReader incrementally parses and validates a JSONL history
	// stream event by event, in constant memory.
	StreamReader = obsfile.StreamReader
	// Incremental checks a single partition window by window, carrying the
	// full frontier of witness states so windowed verdicts equal batch ones.
	Incremental = monitor.Incremental
	// ServeConfig configures NewServer.
	ServeConfig = serve.Config
	// ServeServer is the running streaming-monitoring service.
	ServeServer = serve.Server
	// ServeStats is a live counter snapshot of a ServeServer.
	ServeStats = serve.Stats
	// ServeSummary is the final report of a drained ServeServer.
	ServeSummary = serve.Summary
	// PartitionVerdict is one partition's judgment.
	PartitionVerdict = serve.PartitionVerdict
	// ServeCheckpoint is the resumable on-disk state of a ServeServer
	// (ServeConfig.CheckpointPath / ResumeServer).
	ServeCheckpoint = serve.Checkpoint
	// Backpressure selects the full-queue policy of ServeConfig.
	Backpressure = serve.Backpressure
	// DistConfig configures RunDist.
	DistConfig = dist.Config
	// DistStats counts the fault-tolerance activity of a RunDist call:
	// units done/resumed/poisoned, leases granted/expired, retries, stale
	// deliveries, and worker failures absorbed.
	DistStats = dist.Stats
	// DistLauncher executes one leased work unit; the coordinator is
	// transport-agnostic behind this seam (in-process goroutines and local
	// worker processes ship; multi-machine transports plug in here).
	DistLauncher = dist.Launcher
	// DistUnitSpec is the job a DistLauncher receives: the work unit plus
	// its lease sequence, attempt number, and heartbeat cadence.
	DistUnitSpec = dist.UnitSpec
	// DistInProcLauncher runs work units on goroutines in this process.
	DistInProcLauncher = dist.InProcLauncher
	// DistExecLauncher runs each work unit in a fresh worker process so a
	// kill -9 of a worker costs one lease, not the run.
	DistExecLauncher = dist.ExecLauncher
	// PoisonedUnit records one work unit that exhausted its retry budget.
	PoisonedUnit = dist.PoisonedUnit
	// PoisonedUnitsError is returned by RunDist when some units exhausted
	// their retry budget; it carries the partial stats over completed units.
	PoisonedUnitsError = dist.PoisonedUnitsError
)

// Backpressure policies for ServeConfig.Backpressure.
const (
	// BlockOnFull stalls the producer until the worker catches up.
	BlockOnFull = serve.BlockOnFull
	// ShedOnFull drops the event and poisons its partition: the partition's
	// verdict is withheld rather than silently computed on a gapped history.
	ShedOnFull = serve.ShedOnFull
)

// ParseBackpressure parses the CLI spelling ("block" or "shed") of a
// backpressure policy.
func ParseBackpressure(s string) (Backpressure, error) { return serve.ParseBackpressure(s) }

// NewStreamReader wraps a live JSONL history stream (a pipe, a socket) for
// incremental event-by-event reading; errors are sticky and agree exactly
// with batch ReadTrace on the same bytes.
func NewStreamReader(r io.Reader) *StreamReader { return obsfile.NewStreamReader(r) }

// NewIncremental creates a windowed incremental checker for one partition's
// event stream; feed it quiescent windows with ExtendComplete and judge the
// residual with Finish.
func NewIncremental(m *Model, opts MonitorOptions) (*Incremental, error) {
	return monitor.NewIncremental(m, opts)
}

// NewServer starts the streaming monitoring service ('lineup serve' as a
// library): Ingest events as they happen, read Verdicts live, Close for the
// final summary.
func NewServer(cfg ServeConfig) (*ServeServer, error) { return serve.New(cfg) }

// RunDist runs fault-tolerant distributed phase-2 exploration ('lineup dist'
// as a library): the schedule tree is split into work units, leased to
// workers with heartbeat-renewed deadlines, and merged into a result
// bit-identical to the sequential check regardless of worker count, kill
// schedule, or lease reassignment. With DistConfig.Dir set, the run journals
// progress and survives a coordinator kill -9 via a later RunDist on the
// same directory.
func RunDist(ctx context.Context, cfg DistConfig) (*Result, DistStats, error) {
	return dist.Run(ctx, cfg)
}

// ResumeServer loads cfg.CheckpointPath and returns a config that resumes
// the checkpointed run: pass it to NewServer, then replay the stream from
// the beginning — the first ServeConfig.SkipEvents already-checked events
// are skipped.
func ResumeServer(cfg ServeConfig) (ServeConfig, error) { return serve.Resume(cfg) }

// LoadServeCheckpoint reads a service checkpoint written via
// ServeConfig.CheckpointPath.
func LoadServeCheckpoint(path string) (*ServeCheckpoint, error) { return serve.Load(path) }
