// Benchmarks regenerating the paper's quantitative claims. Each table and
// figure of the evaluation has a corresponding benchmark (or group):
//
//	Table 1  -> BenchmarkTable1Inventory
//	Table 2  -> BenchmarkTable2 (one sub-benchmark per class), plus
//	            BenchmarkFailingVsPassingTestcase for the Section 5.4
//	            observation that failing testcases finish much faster
//	Fig. 1   -> BenchmarkFig1BlockingCollection
//	Fig. 4   -> BenchmarkFig4CounterModelCheck
//	Fig. 7   -> BenchmarkFig7ObservationFile
//	Fig. 9   -> BenchmarkFig9ManualResetEvent
//	Sec. 5.4 -> BenchmarkPhase1SerialEnumeration / BenchmarkPhase2Exploration
//	Sec. 5.6 -> BenchmarkComparisonCheckers
//	ablation -> BenchmarkAblationPreemptionBound, BenchmarkAblationGranularity
//
// Run with: go test -bench=. -benchmem
package lineup_test

import (
	"fmt"
	"io"
	"testing"

	"lineup"
	"lineup/internal/atomicity"
	"lineup/internal/bench"
	"lineup/internal/collections"
	"lineup/internal/core"
	"lineup/internal/history"
	"lineup/internal/monitor"
	"lineup/internal/obsfile"
	"lineup/internal/race"
	"lineup/internal/sched"
)

func causeCase(b *testing.B, id bench.Cause) bench.CauseCase {
	b.Helper()
	for _, c := range bench.CauseCases() {
		if c.Cause == id {
			return c
		}
	}
	b.Fatalf("cause %s not found", id)
	return bench.CauseCase{}
}

// BenchmarkTable1Inventory regenerates the class inventory of Table 1.
func BenchmarkTable1Inventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table1()
		if len(rows) != 13 {
			b.Fatalf("expected 13 classes, got %d", len(rows))
		}
	}
}

// BenchmarkTable2 runs the Table 2 methodology (RandomCheck) on every
// class, with a benchmark-friendly 2x3 dimension and reduced sample per
// iteration (the cmd/lineup table2 command runs the paper's full 100
// samples of 3x3). The reported per-op time is the cost of checking
// `samples` random tests of one class at its Table 2 preemption bound.
func BenchmarkTable2(b *testing.B) {
	const samples = 2
	for _, e := range bench.Registry() {
		subjects := []*lineup.Subject{e.Subject}
		if e.Pre != nil {
			subjects = append(subjects, e.Pre)
		}
		for _, sub := range subjects {
			sub := sub
			bound := e.Bound
			b.Run(sub.Name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_, err := lineup.RandomCheck(sub, nil, lineup.RandomOptions{
						Rows: 2, Cols: 3, Samples: samples, Seed: 1,
						Options: lineup.Options{PreemptionBound: bound},
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFailingVsPassingTestcase quantifies the Section 5.4 observation:
// "As usual, testcases fail much quicker than they pass."
func BenchmarkFailingVsPassingTestcase(b *testing.B) {
	fail := causeCase(b, bench.CauseG) // TCS(Pre) double-completion, fails fast
	b.Run("failing", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := lineup.Check(fail.Subject, fail.Test, lineup.Options{PreemptionBound: fail.Bound})
			if err != nil || res.Verdict != lineup.Fail {
				b.Fatalf("res=%v err=%v", res.Verdict, err)
			}
		}
	})
	b.Run("passing", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := lineup.Check(fail.Counterpart, fail.Test, lineup.Options{PreemptionBound: fail.Bound})
			if err != nil || res.Verdict != lineup.Pass {
				b.Fatalf("res=%v err=%v", res.Verdict, err)
			}
		}
	})
}

// BenchmarkFig1BlockingCollection checks the Fig. 1 scenario end to end.
func BenchmarkFig1BlockingCollection(b *testing.B) {
	c := causeCase(b, bench.CauseB)
	for i := 0; i < b.N; i++ {
		res, err := lineup.Check(c.Subject, c.Test, lineup.Options{PreemptionBound: c.Bound})
		if err != nil || res.Verdict != lineup.Fail {
			b.Fatalf("res=%v err=%v", res, err)
		}
	}
}

// BenchmarkFig9ManualResetEvent checks the Fig. 9 scenario (which needs a
// deeper preemption bound, see the ablation).
func BenchmarkFig9ManualResetEvent(b *testing.B) {
	c := causeCase(b, bench.CauseA)
	for i := 0; i < b.N; i++ {
		res, err := lineup.Check(c.Subject, c.Test, lineup.Options{PreemptionBound: c.Bound})
		if err != nil || res.Verdict != lineup.Fail {
			b.Fatalf("res=%v err=%v", res, err)
		}
	}
}

// BenchmarkFig4CounterModelCheck benchmarks the model-based classic and
// generalized checks on the Fig. 4 counter.
func BenchmarkFig4CounterModelCheck(b *testing.B) {
	inc := lineup.Op{Method: "Inc", Run: func(t *lineup.Thread, o any) string {
		o.(interface{ Inc(*sched.Thread) }).Inc(t)
		return "ok"
	}}
	get := lineup.Op{Method: "Get", Run: func(t *lineup.Thread, o any) string {
		return fmt.Sprint(o.(interface{ Get(*sched.Thread) int }).Get(t))
	}}
	impl := &lineup.Subject{Name: "Counter2", New: func(t *lineup.Thread) any { return collections.NewCounter2(t) }, Ops: []lineup.Op{inc, get}}
	model := &lineup.Subject{Name: "Counter", New: func(t *lineup.Thread) any { return collections.NewCounter(t) }, Ops: []lineup.Op{inc, get}}
	m := &lineup.Test{Rows: [][]lineup.Op{{inc, get}, {inc}}}
	b.Run("classic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lineup.CheckAgainstModel(impl, model, m, lineup.RefOptions{ClassicOnly: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("generalized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lineup.CheckAgainstModel(impl, model, m, lineup.RefOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// queue3x3 is the workload of the Section 5.4/5.5 measurements: a 3x3 test
// over the corrected queue.
func queue3x3() (*lineup.Subject, *lineup.Test) {
	sub, _, _ := bench.Find("ConcurrentQueue")
	enq10, _ := sub.FindOp("Enqueue(10)")
	enq20, _ := sub.FindOp("Enqueue(20)")
	deq, _ := sub.FindOp("TryDequeue()")
	count, _ := sub.FindOp("Count()")
	peek, _ := sub.FindOp("TryPeek()")
	return sub, &lineup.Test{Rows: [][]lineup.Op{
		{enq10, deq, count},
		{enq20, deq, peek},
		{count, enq10, deq},
	}}
}

// BenchmarkPhase1SerialEnumeration measures the cost of synthesizing the
// specification of a 3x3 test (at most 1680 serial interleavings) — the
// paper's "automatic enumeration of a sequential specification is very
// cheap" claim (Section 5.4).
func BenchmarkPhase1SerialEnumeration(b *testing.B) {
	sub, m := queue3x3()
	for i := 0; i < b.N; i++ {
		n := 0
		_, err := core.ForEachSerialExecution(sub, m, core.Options{}, false, func(out *sched.Outcome) bool {
			n++
			return true
		})
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("no serial executions")
		}
	}
}

// BenchmarkPhase2Exploration measures the preemption-bounded concurrent
// exploration of the same 3x3 test.
func BenchmarkPhase2Exploration(b *testing.B) {
	sub, m := queue3x3()
	for i := 0; i < b.N; i++ {
		_, err := core.ForEachExecution(sub, m, core.Options{PreemptionBound: 2}, false, func(out *sched.Outcome) bool {
			return true
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckFullTest measures a complete two-phase Check of the 3x3
// queue test.
func BenchmarkCheckFullTest(b *testing.B) {
	sub, m := queue3x3()
	for i := 0; i < b.N; i++ {
		res, err := lineup.Check(sub, m, lineup.Options{PreemptionBound: 2})
		if err != nil || res.Verdict != lineup.Pass {
			b.Fatalf("res=%v err=%v", res, err)
		}
	}
}

// BenchmarkAblationPreemptionBound sweeps the preemption bound on the 3x3
// queue test, quantifying the exponential growth that motivates bounding
// (Section 4.3).
func BenchmarkAblationPreemptionBound(b *testing.B) {
	sub, m := queue3x3()
	for _, pb := range []int{lineup.NoPreemptions, 1, 2, 3} {
		pb := pb
		name := fmt.Sprintf("PB=%d", pb)
		if pb == lineup.NoPreemptions {
			name = "PB=0"
		}
		b.Run(name, func(b *testing.B) {
			execs := 0
			for i := 0; i < b.N; i++ {
				stats, err := core.ForEachExecution(sub, m, core.Options{PreemptionBound: pb}, false, func(out *sched.Outcome) bool {
					return true
				})
				if err != nil {
					b.Fatal(err)
				}
				execs = stats.Executions
			}
			b.ReportMetric(float64(execs), "schedules")
		})
	}
}

// BenchmarkAblationGranularity compares all-access preemption (the default)
// with CHESS-like sync-only preemption on the same test.
func BenchmarkAblationGranularity(b *testing.B) {
	sub, m := queue3x3()
	for _, g := range []struct {
		name string
		gran sched.Granularity
	}{{"all-accesses", sched.GranAll}, {"sync-only", sched.GranSync}} {
		g := g
		b.Run(g.name, func(b *testing.B) {
			execs := 0
			for i := 0; i < b.N; i++ {
				stats, err := core.ForEachExecution(sub, m, core.Options{PreemptionBound: 2, Granularity: g.gran}, false, func(out *sched.Outcome) bool {
					return true
				})
				if err != nil {
					b.Fatal(err)
				}
				execs = stats.Executions
			}
			b.ReportMetric(float64(execs), "schedules")
		})
	}
}

// BenchmarkComparisonCheckers measures the Section 5.6 comparison: race
// detection plus serializability monitoring over one test's executions.
func BenchmarkComparisonCheckers(b *testing.B) {
	sub, m := queue3x3()
	b.Run("race+atomicity", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			det := race.NewDetector()
			warnings := 0
			_, err := core.ForEachExecution(sub, m, core.Options{PreemptionBound: 2}, true, func(out *sched.Outcome) bool {
				det.Analyze(out.Trace)
				if w := atomicity.Analyze(out.Trace); w != nil {
					warnings++
				}
				return true
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig7ObservationFile measures writing (and parsing back) the
// observation file of a checked test.
func BenchmarkFig7ObservationFile(b *testing.B) {
	sub, m := queue3x3()
	res, err := lineup.Check(sub, m, lineup.Options{PreemptionBound: 2, KeepSpec: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := obsfile.Write(io.Discard, res.Spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShrink measures the automatic minimization of a failing 3x3
// test (the paper did this step manually, Section 5.1).
func BenchmarkShrink(b *testing.B) {
	sub, _, _ := bench.Find("Lazy(Pre)")
	value, _ := sub.FindOp("Value()")
	tos, _ := sub.FindOp("ToString()")
	m := &lineup.Test{Rows: [][]lineup.Op{
		{value, tos, value}, {tos, value, tos}, {value, value, tos},
	}}
	for i := 0; i < b.N; i++ {
		_, res, err := lineup.Shrink(sub, m, lineup.Options{})
		if err != nil || res.Verdict != lineup.Fail {
			b.Fatalf("res=%v err=%v", res, err)
		}
	}
}

// BenchmarkRandomCheckParallel measures the embarrassingly-parallel
// distribution of Section 4.3: the same sample checked with 1 and with 8
// workers.
func BenchmarkRandomCheckParallel(b *testing.B) {
	sub, _, _ := bench.Find("ConcurrentQueue")
	for _, workers := range []int{1, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := lineup.RandomCheck(sub, nil, lineup.RandomOptions{
					Rows: 2, Cols: 2, Samples: 8, Seed: 1, Workers: workers,
					Options: lineup.Options{PreemptionBound: 2},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBugFindingStrategies compares time-to-first-violation of
// exhaustive preemption-bounded DFS against random-walk and PCT schedule
// sampling (the search-prioritization family of CHESS heuristics the paper
// cites) on the Fig. 9 ManualResetEvent bug, whose depth-4 interleaving is
// the hardest of the seeded defects.
func BenchmarkBugFindingStrategies(b *testing.B) {
	c := causeCase(b, bench.CauseA)
	b.Run("exhaustive-PB4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := lineup.Check(c.Subject, c.Test, lineup.Options{PreemptionBound: 4})
			if err != nil || res.Verdict != lineup.Fail {
				b.Fatalf("res=%v err=%v", res, err)
			}
		}
	})
	b.Run("random-walk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := lineup.Check(c.Subject, c.Test, lineup.Options{
				SampleSchedules: 20000, SampleStrategy: sched.StrategyWalk, SampleSeed: int64(i + 1),
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Verdict != lineup.Fail {
				b.Skip("walk sample missed the bug (expected occasionally)")
			}
		}
	})
	b.Run("pct-depth4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := lineup.Check(c.Subject, c.Test, lineup.Options{
				SampleSchedules: 20000, SampleStrategy: sched.StrategyPCT,
				PCTDepth: 4, SampleSeed: int64(i + 1),
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Verdict != lineup.Fail {
				b.Skip("pct sample missed the bug (expected occasionally)")
			}
		}
	})
}

// monitorRound appends one round of mutually concurrent operations to the
// event list: every listed thread calls, then every thread returns, so the
// ops within a round overlap pairwise while successive rounds are ordered
// by <H. ops[i] is {name, result} for thread i.
func monitorRound(events []history.Event, next *int, ops [][2]string) []history.Event {
	base := *next
	for th, op := range ops {
		events = append(events, history.Event{Thread: th, Kind: history.Call, Op: op[0], Index: base + th})
	}
	for th, op := range ops {
		events = append(events, history.Event{Thread: th, Kind: history.Return, Op: op[0], Result: op[1], Index: base + th})
	}
	*next = base + len(ops)
	return events
}

// monitorIncHistory builds `rounds` rounds of `threads` concurrent Inc()
// operations followed by a Get() observer reporting one more than the true
// total. The history is non-linearizable, so every search must exhaust the
// whole space to refute it — and because all increments are
// indistinguishable, the memoized search collapses the per-round orderings
// into counter states while naive enumeration replays every one.
func monitorIncHistory(threads, rounds int) *history.History {
	round := make([][2]string, threads)
	for i := range round {
		round[i] = [2]string{"Inc()", "ok"}
	}
	var events []history.Event
	next := 0
	for r := 0; r < rounds; r++ {
		events = monitorRound(events, &next, round)
	}
	events = monitorRound(events, &next, [][2]string{{"Get()", fmt.Sprint(threads*rounds + 1)}})
	return &history.History{Events: events}
}

// monitorSetHistory builds one wide round of 2*keys mutually concurrent set
// operations: each key is Added twice with both calls claiming to have
// changed the set, which no serial order allows. Partitioning reduces the
// refutation to `keys` independent two-op subproblems.
func monitorSetHistory(keys int) *history.History {
	ops := make([][2]string, 0, 2*keys)
	for k := 0; k < keys; k++ {
		op := fmt.Sprintf("Add(k%d)", k)
		ops = append(ops, [2]string{op, "true"}, [2]string{op, "true"})
	}
	next := 0
	return &history.History{Events: monitorRound(nil, &next, ops)}
}

// BenchmarkMonitorVsEnumeration pits the monitor's memoized Wing-Gong
// search (and, on the set model, its P-compositional partitioning) against
// naive permutation enumeration on recorded histories that force a full
// refutation. The gap widens with history width: on 3x3 the memoization
// mostly pays for itself, from 4 threads on it wins outright.
func BenchmarkMonitorVsEnumeration(b *testing.B) {
	counterModel, _ := lineup.BuiltinModel("counter")
	for _, cfg := range []struct {
		name            string
		threads, rounds int
	}{
		{"3x3", 3, 3},
		{"4x3", 4, 3},
		{"4x4", 4, 4},
	} {
		h := monitorIncHistory(cfg.threads, cfg.rounds)
		b.Run(cfg.name+"/memoized", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := lineup.CheckHistory(counterModel, h, lineup.MonitorOptions{})
				if err != nil || out.Linearizable {
					b.Fatalf("out=%+v err=%v", out, err)
				}
			}
		})
		b.Run(cfg.name+"/no-memo", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := lineup.CheckHistory(counterModel, h, lineup.MonitorOptions{NoMemo: true})
				if err != nil || out.Linearizable {
					b.Fatalf("out=%+v err=%v", out, err)
				}
			}
		})
		b.Run(cfg.name+"/naive-enumeration", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ok, err := monitor.NaiveCheck(counterModel, h, lineup.MonitorOptions{})
				if err != nil || ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
		})
	}
	setModel, _ := lineup.BuiltinModel("set")
	hset := monitorSetHistory(6)
	b.Run("set6/partitioned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := lineup.CheckHistory(setModel, hset, lineup.MonitorOptions{})
			if err != nil || out.Linearizable || out.Stats.Parts != 6 {
				b.Fatalf("out=%+v err=%v", out, err)
			}
		}
	})
	b.Run("set6/unsplit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := lineup.CheckHistory(setModel, hset, lineup.MonitorOptions{NoPartition: true})
			if err != nil || out.Linearizable {
				b.Fatalf("out=%+v err=%v", out, err)
			}
		}
	})
}
