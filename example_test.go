package lineup_test

import (
	"fmt"

	"lineup"
	"lineup/internal/vsync"
)

// lossyCounter is the paper's Section 2.2.1 counter: Inc performs an
// unsynchronized read-modify-write, so concurrent increments can be lost.
type lossyCounter struct {
	count *vsync.Cell[int]
}

func newLossyCounter(t *lineup.Thread) *lossyCounter {
	return &lossyCounter{count: vsync.NewCell(t, "count", 0)}
}

func (c *lossyCounter) Inc(t *lineup.Thread) {
	c.count.Store(t, c.count.Load(t)+1)
}

func (c *lossyCounter) Get(t *lineup.Thread) int {
	return c.count.Load(t)
}

// ExampleCheck runs the two-phase Line-Up check on the buggy counter of the
// paper's Section 2.2.1 and prints the verdict.
func ExampleCheck() {
	inc := lineup.Op{Method: "Inc", Run: func(t *lineup.Thread, obj any) string {
		obj.(*lossyCounter).Inc(t)
		return "ok"
	}}
	get := lineup.Op{Method: "Get", Run: func(t *lineup.Thread, obj any) string {
		return fmt.Sprint(obj.(*lossyCounter).Get(t))
	}}
	sub := &lineup.Subject{
		Name: "LossyCounter",
		New:  func(t *lineup.Thread) any { return newLossyCounter(t) },
		Ops:  []lineup.Op{inc, get},
	}
	// Two threads increment; one reads. A lost update makes Get return 1
	// after both increments completed — no serial witness allows that.
	m := &lineup.Test{Rows: [][]lineup.Op{{inc, get}, {inc}}}
	res, err := lineup.Check(sub, m, lineup.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("verdict:", res.Verdict)
	fmt.Println("violation kind:", res.Violation.Kind)
	// Output:
	// verdict: FAIL
	// violation kind: concurrent history with no serial witness
}

// ExampleShrink minimizes a failing test to its smallest failing form.
func ExampleShrink() {
	inc := lineup.Op{Method: "Inc", Run: func(t *lineup.Thread, obj any) string {
		obj.(*lossyCounter).Inc(t)
		return "ok"
	}}
	get := lineup.Op{Method: "Get", Run: func(t *lineup.Thread, obj any) string {
		return fmt.Sprint(obj.(*lossyCounter).Get(t))
	}}
	sub := &lineup.Subject{
		Name: "LossyCounter",
		New:  func(t *lineup.Thread) any { return newLossyCounter(t) },
		Ops:  []lineup.Op{inc, get},
	}
	big := &lineup.Test{Rows: [][]lineup.Op{{inc, get, inc}, {get, inc, get}, {inc, inc, get}}}
	min, res, err := lineup.Shrink(sub, big, lineup.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	threads, ops := min.Dim()
	fmt.Printf("shrunk from %d ops to %d ops (%dx%d), still %v\n",
		big.NumOps(), min.NumOps(), threads, ops, res.Verdict)
	// Output:
	// shrunk from 9 ops to 3 ops (2x2), still FAIL
}
